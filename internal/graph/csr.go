package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
)

// The .csrg binary graph format.
//
// Text edge lists (the storage format of the paper's datasets, §4.2) cost a
// line scan plus two integer parses per edge on every load. The .csrg format
// stores the same graph as little-endian fixed-width records so loading is
// I/O-bound: one bulk read, then a straight uint32 decode. A file carries the
// edge list in its original stream order — partitioning strategies assign by
// edge index, so order is part of graph identity — and optionally the
// prebuilt CSR adjacency sections, making EnsureCSR free after load.
//
// Layout (all integers little-endian):
//
//	header:
//	  [0:4)   magic "CSRG"
//	  [4:6)   uint16 format version (currently 1)
//	  [6:8)   uint16 flags (bit 0: CSR adjacency sections present)
//	  [8:16)  uint64 numVertices
//	  [16:24) uint64 numEdges
//	  [24:28) uint32 graph-name length
//	  [28:..) graph name (UTF-8)
//	payload:
//	  edges     2·numEdges   × uint32 (src,dst interleaved, stream order)
//	  — when flags bit 0 is set —
//	  outIndex  numVertices+1 × uint32
//	  outAdj    numEdges      × uint32
//	  outEdge   numEdges      × uint32 (edge id parallel to outAdj)
//	  inIndex   numVertices+1 × uint32
//	  inAdj     numEdges      × uint32
//	  inEdge    numEdges      × uint32
//	footer:
//	  [0:4) uint32 CRC-32C (Castagnoli) of the payload
//
// Every section is a flat array whose length is known from the header, so a
// reader can mmap the file and slice sections at fixed offsets; LoadCSR reads
// the file in one call and decodes without per-line work. The trailing
// checksum detects bit rot and torn writes; a wrong header length detects
// truncation before any decode happens.

// CSRMagic is the 4-byte signature at the start of every .csrg file.
const CSRMagic = "CSRG"

// CSRVersion is the current .csrg format version. Readers reject other
// versions.
const CSRVersion = 1

// CSRExt is the conventional file extension for the binary graph format.
const CSRExt = ".csrg"

const (
	csrFlagHasCSR   = 1 << 0 // CSR adjacency sections follow the edge section
	csrHeaderFixed  = 28     // header bytes before the graph name
	csrMaxNameLen   = 1 << 16
	csrMaxEdges     = 1<<31 - 1 // edge ids are int32 throughout the repo
	csrMaxVertices  = 1 << 32
	csrChunkEntries = 1 << 15 // uint32s per encode chunk (128 KiB)
)

// castagnoli is the checksum polynomial: CRC-32C has hardware support on
// amd64/arm64, so verifying an 8 MB payload costs single-digit milliseconds.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// --- writing ----------------------------------------------------------

// WriteCSR writes g in .csrg form, including the CSR adjacency sections so a
// later LoadCSR returns a graph whose EnsureCSR is a no-op. The edge section
// preserves g.Edges order exactly.
func WriteCSR(g *Graph, w io.Writer) error {
	m := g.NumEdges()
	if m > csrMaxEdges {
		return fmt.Errorf("csrg %s: %d edges exceed the int32 edge-id space", g.Name, m)
	}
	g.EnsureCSR()
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeCSRHeader(bw, g.Name, csrFlagHasCSR, uint64(g.NumVertices()), uint64(m)); err != nil {
		return err
	}
	crc := uint32(0)
	sink := func(chunk []byte) error {
		crc = crc32.Update(crc, castagnoli, chunk)
		_, err := bw.Write(chunk)
		return err
	}
	if err := encodeEdges(g.Edges, sink); err != nil {
		return err
	}
	for _, sec := range []struct {
		u []uint32
		i []int32
	}{
		{i: g.outIndex}, {u: g.outAdj}, {i: g.outEdge},
		{i: g.inIndex}, {u: g.inAdj}, {i: g.inEdge},
	} {
		var err error
		if sec.u != nil {
			err = encode32s(sec.u, sink)
		} else {
			err = encode32s(sec.i, sink)
		}
		if err != nil {
			return err
		}
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc)
	if _, err := bw.Write(foot[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveCSR writes g to a .csrg file at path.
func SaveCSR(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSR(g, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSRHeader(w io.Writer, name string, flags uint16, numVertices, numEdges uint64) error {
	if len(name) > csrMaxNameLen {
		name = name[:csrMaxNameLen]
	}
	hdr := make([]byte, csrHeaderFixed+len(name))
	copy(hdr[0:4], CSRMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], CSRVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], numVertices)
	binary.LittleEndian.PutUint64(hdr[16:24], numEdges)
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(name)))
	copy(hdr[csrHeaderFixed:], name)
	_, err := w.Write(hdr)
	return err
}

// encode32s streams a 32-bit section through a reused chunk buffer into
// sink, keeping encode memory O(chunk) no matter how large the section is.
// int32 index values are non-negative, so their uint32 cast is
// value-preserving.
func encode32s[T int32 | uint32](vals []T, sink func([]byte) error) error {
	buf := make([]byte, 0, 4*csrChunkEntries)
	for len(vals) > 0 {
		n := len(vals)
		if n > csrChunkEntries {
			n = csrChunkEntries
		}
		buf = buf[:4*n]
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[i]))
		}
		if err := sink(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// encodeEdges is encode32s for the interleaved (src,dst) edge section.
func encodeEdges(edges []Edge, sink func([]byte) error) error {
	buf := make([]byte, 0, 8*(csrChunkEntries/2))
	for len(edges) > 0 {
		n := len(edges)
		if n > csrChunkEntries/2 {
			n = csrChunkEntries / 2
		}
		buf = buf[:8*n]
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[8*i:], edges[i].Src)
			binary.LittleEndian.PutUint32(buf[8*i+4:], edges[i].Dst)
		}
		if err := sink(buf); err != nil {
			return err
		}
		edges = edges[n:]
	}
	return nil
}

// --- reading ----------------------------------------------------------

// csrHeader is the decoded fixed header plus name.
type csrHeader struct {
	flags       uint16
	numVertices uint64
	numEdges    uint64
	name        string
}

func (h csrHeader) hasCSR() bool { return h.flags&csrFlagHasCSR != 0 }

// payloadLen returns the byte length of the payload the header announces.
func (h csrHeader) payloadLen() int64 {
	n := 8 * int64(h.numEdges)
	if h.hasCSR() {
		n += 4 * (2*(int64(h.numVertices)+1) + 4*int64(h.numEdges))
	}
	return n
}

func decodeCSRHeader(src string, b []byte) (csrHeader, int, error) {
	var h csrHeader
	if len(b) < csrHeaderFixed {
		return h, 0, fmt.Errorf("csrg %s: truncated header (%d bytes)", src, len(b))
	}
	if string(b[0:4]) != CSRMagic {
		return h, 0, fmt.Errorf("csrg %s: bad magic %q (not a .csrg file)", src, b[0:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != CSRVersion {
		return h, 0, fmt.Errorf("csrg %s: unsupported format version %d (reader supports %d)", src, v, CSRVersion)
	}
	h.flags = binary.LittleEndian.Uint16(b[6:8])
	if h.flags&^uint16(csrFlagHasCSR) != 0 {
		return h, 0, fmt.Errorf("csrg %s: unknown flags %#x", src, h.flags)
	}
	h.numVertices = binary.LittleEndian.Uint64(b[8:16])
	h.numEdges = binary.LittleEndian.Uint64(b[16:24])
	if h.numEdges > csrMaxEdges {
		return h, 0, fmt.Errorf("csrg %s: %d edges exceed the int32 edge-id space", src, h.numEdges)
	}
	if h.numVertices >= csrMaxVertices {
		return h, 0, fmt.Errorf("csrg %s: %d vertices exceed the uint32 id space", src, h.numVertices)
	}
	nameLen := binary.LittleEndian.Uint32(b[24:28])
	if nameLen > csrMaxNameLen {
		return h, 0, fmt.Errorf("csrg %s: implausible name length %d", src, nameLen)
	}
	end := csrHeaderFixed + int(nameLen)
	if len(b) < end {
		return h, 0, fmt.Errorf("csrg %s: truncated header name (want %d bytes, have %d)", src, end, len(b))
	}
	h.name = string(b[csrHeaderFixed:end])
	return h, end, nil
}

// LoadCSR reads a .csrg file. The whole file is read in one call (the layout
// is equally mmap-able: every section sits at a fixed offset computed from
// the header) and decoded with bulk fixed-width conversions — no per-line
// parsing — which is what makes binary loads I/O-bound. The payload checksum
// is always verified.
func LoadCSR(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeCSR(path, data)
}

// ReadCSR reads a .csrg document from r (buffering it fully).
func ReadCSR(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeCSR("stream", data)
}

func decodeCSR(src string, data []byte) (*Graph, error) {
	h, off, err := decodeCSRHeader(src, data)
	if err != nil {
		return nil, err
	}
	want := int64(off) + h.payloadLen() + 4
	if int64(len(data)) != want {
		return nil, fmt.Errorf("csrg %s: truncated or oversized file: %d bytes, header implies %d", src, len(data), want)
	}
	payload := data[off : len(data)-4]
	if got, stored := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[len(data)-4:]); got != stored {
		return nil, fmt.Errorf("csrg %s: payload checksum mismatch (%#08x != stored %#08x): file is corrupt", src, got, stored)
	}

	n := int(h.numVertices)
	m := int(h.numEdges)
	edges, maxID, err := decodeEdgeSection(src, payload[:8*m], uint32(n))
	if err != nil {
		return nil, err
	}
	if m > 0 && int(maxID)+1 != n {
		return nil, fmt.Errorf("csrg %s: header says %d vertices but max edge id is %d", src, n, maxID)
	}
	if m == 0 && n != 0 {
		return nil, fmt.Errorf("csrg %s: %d vertices with no edges (writers derive the vertex set from edges)", src, n)
	}
	g := &Graph{Name: h.name, Edges: edges, numVertices: n}

	if !h.hasCSR() {
		g.buildDegrees()
		return g, nil
	}
	rest := payload[8*m:]
	next := func(entries int) []byte {
		sec := rest[:4*entries]
		rest = rest[4*entries:]
		return sec
	}
	g.outIndex = decodeIndexSection(next(n + 1))
	g.outAdj = decodeU32Section(next(m))
	g.outEdge = decodeIndexSection(next(m))
	g.inIndex = decodeIndexSection(next(n + 1))
	g.inAdj = decodeU32Section(next(m))
	g.inEdge = decodeIndexSection(next(m))
	if err := g.validateCSRSections(src); err != nil {
		return nil, err
	}
	// Degrees fall out of the index sections without another edge scan.
	g.outDeg = make([]int32, n)
	g.inDeg = make([]int32, n)
	for v := 0; v < n; v++ {
		g.outDeg[v] = g.outIndex[v+1] - g.outIndex[v]
		g.inDeg[v] = g.inIndex[v+1] - g.inIndex[v]
	}
	return g, nil
}

// decodeEdgeChunk decodes len(b)/8 interleaved (src,dst) records from b
// into out, bounds-checking every endpoint against the declared vertex
// count and folding ids into maxID. base is the global index of out[0],
// for error messages. Both the bulk loader and StreamCSR decode through
// this one loop so the paths cannot diverge.
func decodeEdgeChunk(src string, b []byte, numVertices uint64, base int64, out []Edge, maxID *VertexID) error {
	m := len(b) / 8
	for i := 0; i < m; i++ {
		s := binary.LittleEndian.Uint32(b[8*i:])
		d := binary.LittleEndian.Uint32(b[8*i+4:])
		if uint64(s) >= numVertices || uint64(d) >= numVertices {
			return fmt.Errorf("csrg %s: edge %d (%d→%d) outside declared vertex range [0,%d)", src, base+int64(i), s, d, numVertices)
		}
		if s > *maxID {
			*maxID = s
		}
		if d > *maxID {
			*maxID = d
		}
		out[i] = Edge{s, d}
	}
	return nil
}

// decodeEdgeSection bulk-decodes the whole interleaved edge array.
func decodeEdgeSection(src string, b []byte, numVertices uint32) ([]Edge, VertexID, error) {
	edges := make([]Edge, len(b)/8)
	var maxID VertexID
	if err := decodeEdgeChunk(src, b, uint64(numVertices), 0, edges, &maxID); err != nil {
		return nil, 0, err
	}
	return edges, maxID, nil
}

func decodeU32Section(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func decodeIndexSection(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// validateCSRSections sanity-checks loaded adjacency sections so a corrupt
// (but checksum-colliding) or hand-built file cannot cause out-of-bounds
// panics later: indexes must be monotonic and end at numEdges, neighbor ids
// must be in-range, and edge ids must be valid.
func (g *Graph) validateCSRSections(src string) error {
	n, m := g.numVertices, len(g.Edges)
	for _, sec := range []struct {
		what string
		idx  []int32
		adj  []uint32
		eids []int32
	}{
		{"out", g.outIndex, g.outAdj, g.outEdge},
		{"in", g.inIndex, g.inAdj, g.inEdge},
	} {
		if len(sec.idx) != n+1 || sec.idx[0] != 0 || int(sec.idx[n]) != m {
			return fmt.Errorf("csrg %s: %s-index malformed", src, sec.what)
		}
		for v := 0; v < n; v++ {
			if sec.idx[v+1] < sec.idx[v] {
				return fmt.Errorf("csrg %s: %s-index not monotonic at vertex %d", src, sec.what, v)
			}
		}
		for i, a := range sec.adj {
			if int(a) >= n {
				return fmt.Errorf("csrg %s: %s-adjacency %d references vertex %d (numVertices=%d)", src, sec.what, i, a, n)
			}
			if e := sec.eids[i]; e < 0 || int(e) >= m {
				return fmt.Errorf("csrg %s: %s-adjacency %d references edge %d (numEdges=%d)", src, sec.what, i, e, m)
			}
		}
	}
	return nil
}

// --- streaming --------------------------------------------------------

// StreamCSR is StreamEdgeList for the binary format: it reads the edge
// section of a .csrg stream in batches of batchSize edges, calling fn with
// each batch's global offset. Memory stays O(batchSize). Any CSR adjacency
// sections are read through (and the payload checksum verified) after the
// edges are delivered.
//
// It returns the total edge count and the maximum vertex id seen.
func StreamCSR(name string, r io.Reader, batchSize int, fn func(offset int64, edges []Edge) error) (int64, VertexID, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	br := bufio.NewReaderSize(r, 1<<20)
	hdrFixed := make([]byte, csrHeaderFixed)
	if _, err := io.ReadFull(br, hdrFixed); err != nil {
		return 0, 0, fmt.Errorf("csrg %s: reading header: %w", name, err)
	}
	nameLen := binary.LittleEndian.Uint32(hdrFixed[24:28])
	if nameLen > csrMaxNameLen {
		return 0, 0, fmt.Errorf("csrg %s: implausible name length %d", name, nameLen)
	}
	full := make([]byte, csrHeaderFixed+int(nameLen))
	copy(full, hdrFixed)
	if _, err := io.ReadFull(br, full[csrHeaderFixed:]); err != nil {
		return 0, 0, fmt.Errorf("csrg %s: reading header name: %w", name, err)
	}
	h, _, err := decodeCSRHeader(name, full)
	if err != nil {
		return 0, 0, err
	}

	crc := uint32(0)
	m := int64(h.numEdges)
	var total int64
	var maxID VertexID
	buf := make([]byte, 8*batchSize)
	batch := make([]Edge, batchSize)
	for total < m {
		want := m - total
		if want > int64(batchSize) {
			want = int64(batchSize)
		}
		chunk := buf[:8*want]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return total, maxID, fmt.Errorf("csrg %s: truncated edge section at edge %d of %d: %w", name, total, m, err)
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		if err := decodeEdgeChunk(name, chunk, h.numVertices, total, batch[:want], &maxID); err != nil {
			return total, maxID, err
		}
		if err := fn(total, batch[:want]); err != nil {
			return total, maxID, err
		}
		total += want
	}

	// Consume any trailing CSR sections so the payload checksum can be
	// verified end to end, then check the footer.
	remaining := h.payloadLen() - 8*m
	for remaining > 0 {
		want := int64(len(buf))
		if want > remaining {
			want = remaining
		}
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return total, maxID, fmt.Errorf("csrg %s: truncated CSR sections: %w", name, err)
		}
		crc = crc32.Update(crc, castagnoli, buf[:want])
		remaining -= want
	}
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return total, maxID, fmt.Errorf("csrg %s: missing checksum footer: %w", name, err)
	}
	if stored := binary.LittleEndian.Uint32(foot[:]); stored != crc {
		return total, maxID, fmt.Errorf("csrg %s: payload checksum mismatch (%#08x != stored %#08x): file is corrupt", name, crc, stored)
	}
	return total, maxID, nil
}

// CSRWriter is the streaming side of the binary format: it converts an edge
// stream to a .csrg file in one pass and O(batch) memory. Counts are unknown
// until the stream ends, so the destination must be seekable (the header is
// patched on Close); the written file carries no CSR sections — readers
// rebuild adjacency lazily, exactly as with text edge lists.
type CSRWriter struct {
	ws     io.WriteSeeker
	bw     *bufio.Writer
	name   string
	crc    uint32
	edges  int64
	maxID  VertexID
	closed bool
	err    error
}

// NewCSRWriter starts a .csrg document on ws (typically an *os.File) and
// writes a placeholder header.
func NewCSRWriter(ws io.WriteSeeker, name string) (*CSRWriter, error) {
	w := &CSRWriter{ws: ws, bw: bufio.NewWriterSize(ws, 1<<20), name: name}
	if err := writeCSRHeader(w.bw, name, 0, 0, 0); err != nil {
		return nil, err
	}
	return w, nil
}

// Append writes one batch of edges. The slice is not retained.
func (w *CSRWriter) Append(edges []Edge) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("csrg %s: Append after Close", w.name)
	}
	if w.edges+int64(len(edges)) > csrMaxEdges {
		w.err = fmt.Errorf("csrg %s: edge count exceeds the int32 edge-id space", w.name)
		return w.err
	}
	for _, e := range edges {
		if e.Src > w.maxID {
			w.maxID = e.Src
		}
		if e.Dst > w.maxID {
			w.maxID = e.Dst
		}
	}
	w.err = encodeEdges(edges, func(chunk []byte) error {
		w.crc = crc32.Update(w.crc, castagnoli, chunk)
		_, err := w.bw.Write(chunk)
		return err
	})
	w.edges += int64(len(edges))
	return w.err
}

// Close writes the checksum footer, patches the edge and vertex counts into
// the header, and leaves the file positioned at its end. The receiver is
// unusable afterwards; closing the underlying file remains the caller's job.
func (w *CSRWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], w.crc)
	if _, err := w.bw.Write(foot[:]); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	end, err := w.ws.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	var counts [16]byte
	numVertices := uint64(0)
	if w.edges > 0 {
		numVertices = uint64(w.maxID) + 1
	}
	binary.LittleEndian.PutUint64(counts[0:8], numVertices)
	binary.LittleEndian.PutUint64(counts[8:16], uint64(w.edges))
	if _, err := w.ws.Seek(8, io.SeekStart); err != nil {
		return err
	}
	if _, err := w.ws.Write(counts[:]); err != nil {
		return err
	}
	_, err = w.ws.Seek(end, io.SeekStart)
	return err
}

// --- format sniffing --------------------------------------------------

// sniffCSR reports whether the file at path starts with the .csrg magic.
func sniffCSR(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return false, nil // shorter than the magic: not binary
	}
	if err != nil {
		return false, err
	}
	return n == 4 && string(magic[:]) == CSRMagic, nil
}

// LoadFile loads a graph from path in whichever format the file holds,
// sniffing the .csrg magic: binary files go through LoadCSR, everything else
// through the text edge-list parser.
func LoadFile(path string) (*Graph, error) {
	bin, err := sniffCSR(path)
	if err != nil {
		return nil, err
	}
	if bin {
		return LoadCSR(path)
	}
	return LoadEdgeList(path)
}

// StreamFile streams a graph file batch-by-batch in whichever format the
// file holds — the binary fast path via StreamCSR, text via StreamEdgeList —
// with the same contract as both: fn sees every edge in stream order, memory
// stays O(batchSize), and the totals are returned.
func StreamFile(path string, batchSize int, fn func(offset int64, edges []Edge) error) (int64, VertexID, error) {
	bin, err := sniffCSR(path)
	if err != nil {
		return 0, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if bin {
		return StreamCSR(path, f, batchSize, fn)
	}
	return StreamEdgeList(path, f, batchSize, fn)
}

// IsCSRPath reports whether path carries the conventional binary extension.
// Writers use it to pick an output format; readers sniff content instead.
func IsCSRPath(path string) bool {
	return strings.HasSuffix(strings.ToLower(path), CSRExt)
}
