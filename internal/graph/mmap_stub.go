//go:build !unix

package graph

import (
	"errors"
	"os"
)

const mmapAvailable = false

func mmapFile(f *os.File, size int64) (*mmapRef, error) {
	return nil, errors.New("graph: memory mapping is not available on this platform")
}

func munmapBytes(b []byte) {}
