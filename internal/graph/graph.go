// Package graph provides the in-memory graph representation shared by all
// partitioners, engines, and experiments in this repository.
//
// A Graph is primarily an edge list (the form in which the paper's datasets
// are stored and streamed into partitioners), plus lazily-built CSR-style
// adjacency indexes used by the computation engines.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. The paper's largest graph (UK-web) has 105M
// vertices; uint32 covers every dataset used here and halves index memory.
type VertexID = uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Graph is an immutable directed graph. Build one with New or FromEdges and
// do not mutate Edges afterwards; the adjacency indexes are built once.
type Graph struct {
	Name  string
	Edges []Edge

	numVertices int

	// CSR indexes, built lazily by buildCSR.
	outIndex []int32 // offset into outAdj per vertex (len = numVertices+1)
	outAdj   []VertexID
	outEdge  []int32 // edge id parallel to outAdj
	inIndex  []int32
	inAdj    []VertexID
	inEdge   []int32

	outDeg []int32
	inDeg  []int32

	// mmap pins the memory mapping some of the slices above alias when the
	// graph was loaded through the zero-copy path (csr.go); the mapping is
	// released by finalizer once the graph is unreachable.
	mmap *mmapRef
}

// FromEdges builds a Graph from an edge list. The vertex set is the dense
// range [0, maxID]; isolated IDs below the max are retained as degree-0
// vertices (matching how edge-list datasets are loaded by the systems in
// the paper).
func FromEdges(name string, edges []Edge) *Graph {
	var maxID VertexID
	for _, e := range edges {
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	n := 0
	if len(edges) > 0 {
		n = int(maxID) + 1
	}
	g := &Graph{Name: name, Edges: edges, numVertices: n}
	g.buildDegrees()
	return g
}

// NumVertices returns the number of vertices (dense ID space).
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int { return int(g.outDeg[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int { return int(g.inDeg[v]) }

// Degree returns the total degree (in + out) of v.
func (g *Graph) Degree(v VertexID) int { return int(g.outDeg[v] + g.inDeg[v]) }

func (g *Graph) buildDegrees() {
	g.outDeg = make([]int32, g.numVertices)
	g.inDeg = make([]int32, g.numVertices)
	for _, e := range g.Edges {
		g.outDeg[e.Src]++
		g.inDeg[e.Dst]++
	}
}

// buildCSR constructs the adjacency indexes. Called lazily by the accessor
// methods; engines call EnsureCSR once up front.
func (g *Graph) buildCSR() {
	if g.outIndex != nil {
		return
	}
	n := g.numVertices
	m := len(g.Edges)

	outIdx := make([]int32, n+1)
	inIdx := make([]int32, n+1)
	for _, e := range g.Edges {
		outIdx[e.Src+1]++
		inIdx[e.Dst+1]++
	}
	for i := 0; i < n; i++ {
		outIdx[i+1] += outIdx[i]
		inIdx[i+1] += inIdx[i]
	}
	outAdj := make([]VertexID, m)
	outEdge := make([]int32, m)
	inAdj := make([]VertexID, m)
	inEdge := make([]int32, m)
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	for i, e := range g.Edges {
		p := outIdx[e.Src] + outPos[e.Src]
		outAdj[p] = e.Dst
		outEdge[p] = int32(i)
		outPos[e.Src]++
		q := inIdx[e.Dst] + inPos[e.Dst]
		inAdj[q] = e.Src
		inEdge[q] = int32(i)
		inPos[e.Dst]++
	}
	g.outIndex, g.outAdj, g.outEdge = outIdx, outAdj, outEdge
	g.inIndex, g.inAdj, g.inEdge = inIdx, inAdj, inEdge
}

// EnsureCSR builds the adjacency indexes if they are not built yet.
func (g *Graph) EnsureCSR() { g.buildCSR() }

// OutNeighbors returns the out-neighbors of v (shared slice; do not modify).
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	g.buildCSR()
	return g.outAdj[g.outIndex[v]:g.outIndex[v+1]]
}

// InNeighbors returns the in-neighbors of v (shared slice; do not modify).
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	g.buildCSR()
	return g.inAdj[g.inIndex[v]:g.inIndex[v+1]]
}

// OutEdgeIDs returns the edge ids of v's out-edges, parallel to OutNeighbors.
func (g *Graph) OutEdgeIDs(v VertexID) []int32 {
	g.buildCSR()
	return g.outEdge[g.outIndex[v]:g.outIndex[v+1]]
}

// InEdgeIDs returns the edge ids of v's in-edges, parallel to InNeighbors.
func (g *Graph) InEdgeIDs(v VertexID) []int32 {
	g.buildCSR()
	return g.inEdge[g.inIndex[v]:g.inIndex[v+1]]
}

// MaxDegree returns the maximum total degree over all vertices.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.numVertices; v++ {
		if d := int(g.outDeg[v] + g.inDeg[v]); d > max {
			max = d
		}
	}
	return max
}

// MaxInDegree returns the maximum in-degree over all vertices.
func (g *Graph) MaxInDegree() int {
	max := 0
	for _, d := range g.inDeg {
		if int(d) > max {
			max = int(d)
		}
	}
	return max
}

// AvgDegree returns the average total degree, 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	if g.numVertices == 0 {
		return 0
	}
	return 2 * float64(len(g.Edges)) / float64(g.numVertices)
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{|V|=%d |E|=%d}", g.Name, g.numVertices, len(g.Edges))
}

// InDegreeHistogram returns a map from in-degree d to the number of vertices
// with in-degree d (the quantity plotted in the paper's Figure 5.8). The
// zero-degree bucket is included.
func (g *Graph) InDegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, d := range g.inDeg {
		h[int(d)]++
	}
	return h
}

// DegreeHistogram returns a map from total degree to vertex count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.numVertices; v++ {
		h[int(g.outDeg[v]+g.inDeg[v])]++
	}
	return h
}

// SortedHistogram flattens a histogram map into (degree, count) pairs sorted
// by degree, skipping degree 0 (which cannot be plotted on log axes).
func SortedHistogram(h map[int]int) (degrees []int, counts []int) {
	for d := range h {
		if d > 0 {
			degrees = append(degrees, d)
		}
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = h[d]
	}
	return degrees, counts
}
