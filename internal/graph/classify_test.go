package graph

import (
	"math"
	"testing"
)

// syntheticPowerLawHist builds a histogram exactly on a power law:
// count(d) = C·d^-alpha.
func syntheticPowerLawHist(c float64, alpha float64, maxD int) map[int]int {
	h := map[int]int{}
	for d := 1; d <= maxD; d++ {
		n := int(c * math.Pow(float64(d), -alpha))
		if n > 0 {
			h[d] = n
		}
	}
	return h
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	for _, alpha := range []float64{1.5, 2.0, 2.5} {
		h := syntheticPowerLawHist(1e6, alpha, 1000)
		fit := FitPowerLaw(h)
		if math.Abs(fit.Alpha-alpha) > 0.1 {
			t.Errorf("alpha=%v: fitted %v", alpha, fit.Alpha)
		}
		if fit.R2 < 0.98 {
			t.Errorf("alpha=%v: R² = %v, want ≥0.98", alpha, fit.R2)
		}
		if fit.LowDegreeRatio < 0.5 || fit.LowDegreeRatio > 2 {
			t.Errorf("alpha=%v: LowDegreeRatio = %v, want ≈1", alpha, fit.LowDegreeRatio)
		}
	}
}

func TestFitPowerLawLowDegreeDeficit(t *testing.T) {
	// A heavy-tailed histogram with the low-degree counts removed (as in
	// Twitter/LiveJournal, Fig 5.8a/b) must show a small LowDegreeRatio.
	h := syntheticPowerLawHist(1e6, 2.0, 1000)
	h[1] = 10 // nearly no degree-1 vertices
	h[2] = 10
	fit := FitPowerLaw(h)
	if fit.LowDegreeRatio > 0.2 {
		t.Errorf("LowDegreeRatio = %v, want < 0.2 for deficit histogram", fit.LowDegreeRatio)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if fit := FitPowerLaw(nil); fit.Alpha != 0 {
		t.Errorf("empty histogram: alpha = %v, want 0", fit.Alpha)
	}
	if fit := FitPowerLaw(map[int]int{5: 10}); fit.Alpha != 0 {
		t.Errorf("single-point histogram: alpha = %v, want 0", fit.Alpha)
	}
}

func TestPredictInverseOfFit(t *testing.T) {
	h := syntheticPowerLawHist(1e5, 2.0, 500)
	fit := FitPowerLaw(h)
	// Predictions should be within a factor of 2 of the histogram across
	// the support.
	for _, d := range []int{1, 10, 100} {
		pred := fit.Predict(d)
		actual := float64(h[d])
		if pred < actual/2 || pred > actual*2 {
			t.Errorf("Predict(%d) = %v, actual %v", d, pred, actual)
		}
	}
	if fit.Predict(0) != 0 {
		t.Error("Predict(0) should be 0")
	}
}

func TestClassifyLowDegree(t *testing.T) {
	// A ring graph: every vertex has degree 2.
	var edges []Edge
	const n = 1000
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{VertexID(i), VertexID((i + 1) % n)})
	}
	c := Classify(FromEdges("ring", edges))
	if c.Class != LowDegree {
		t.Errorf("ring classified as %v, want low-degree", c.Class)
	}
}

func TestDegreeClassString(t *testing.T) {
	tests := map[DegreeClass]string{
		LowDegree:      "low-degree",
		HeavyTailed:    "heavy-tailed",
		PowerLaw:       "power-law",
		DegreeClass(9): "unknown",
	}
	for c, want := range tests {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}
