package graph

import "unsafe"

// Zero-copy section views for the mmap load path. A .csrg v1 payload is
// little-endian fixed-width records, and writers 8-align the payload start
// (csr.go), so on a little-endian host the mapped bytes already *are* the
// in-memory representation — these helpers just reinterpret them. Each view
// returns nil when the platform byte order or the actual alignment rules it
// out, and the caller falls back to the copying decoder, so a view is an
// optimization and never a behavior change.

// Edge must be exactly two packed uint32s for edgesView to be sound; this
// fails to compile if Edge ever grows padding or fields.
var _ [8]byte = [unsafe.Sizeof(Edge{})]byte{}

// hostLittleEndian reports whether the running machine stores the low byte
// first, i.e. whether .csrg's on-disk layout matches memory.
var hostLittleEndian = func() bool {
	var x uint16 = 0x0102
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// edgesView reinterprets b (interleaved src,dst uint32 pairs) as []Edge.
func edgesView(b []byte) []Edge {
	if !hostLittleEndian || len(b) < 8 ||
		uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(Edge{}) != 0 {
		return nil
	}
	return unsafe.Slice((*Edge)(unsafe.Pointer(&b[0])), len(b)/8)
}

// u32View reinterprets b as []uint32.
func u32View(b []byte) []uint32 {
	if !hostLittleEndian || len(b) < 4 ||
		uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) != 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// i32View reinterprets b as []int32.
func i32View(b []byte) []int32 {
	if !hostLittleEndian || len(b) < 4 ||
		uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(int32(0)) != 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
