package graph

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"strings"
	"testing"
)

// The fuzz targets encode the loader contract the corruption matrices
// (TestCSRCorruptionDetection, TestCSRv2CorruptionDetection) pin case by
// case: arbitrary bytes must never panic a loader, every rejection must be
// a named error, and every acceptance must satisfy the Graph invariants.
// The seed corpus is the corruption matrix replayed as mutations of valid
// v1 and v2 files, so the fuzzer starts at the known-interesting
// boundaries instead of rediscovering the header layout.

// fuzzSeedGraph mirrors testGraph's shapes (hubs, duplicates, self loop,
// isolated ids) without needing a *testing.T.
func fuzzSeedGraph() *Graph {
	return FromEdges("fuzz-seed", []Edge{
		{0, 1}, {1, 2}, {2, 0}, {5, 1}, {1, 5}, {0, 1},
		{7, 0}, {3, 3},
	})
}

func fuzzCSRBytes(f *testing.F, version int) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := WriteCSRVersion(fuzzSeedGraph(), &buf, version); err != nil {
		f.Fatalf("writing v%d seed: %v", version, err)
	}
	return buf.Bytes()
}

// addCSRSeeds seeds both format versions plus the corruption-matrix
// mutations: truncations at the interesting boundaries, a wrong magic, an
// unsupported version, unknown flags, payload bit flips, lying vertex
// counts, and a non-terminating v2 varint.
func addCSRSeeds(f *testing.F) {
	f.Helper()
	v1 := fuzzCSRBytes(f, CSRVersion1)
	v2 := fuzzCSRBytes(f, CSRVersion2)
	mutate := func(base []byte, fn func([]byte) []byte) {
		f.Add(fn(append([]byte(nil), base...)))
	}
	for _, base := range [][]byte{v1, v2} {
		f.Add(base)
		mutate(base, func(b []byte) []byte { return nil })
		mutate(base, func(b []byte) []byte { return b[:10] })
		mutate(base, func(b []byte) []byte { return b[:csrHeaderFixed+2] })
		mutate(base, func(b []byte) []byte { return b[:len(b)/2] })
		mutate(base, func(b []byte) []byte { return b[:len(b)-4] })
		mutate(base, func(b []byte) []byte { return append(b, 0xff) })
		mutate(base, func(b []byte) []byte { b[0] = 'X'; return b })
		mutate(base, func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], 99)
			return b
		})
		mutate(base, func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], 0x80)
			return b
		})
		mutate(base, func(b []byte) []byte {
			b[len(b)-5] ^= 0x40
			return b
		})
		mutate(base, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 2)
			return b
		})
		mutate(base, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1000)
			return b
		})
	}
	// v2 only: a varint made of continuation bytes that never terminates.
	mutate(v2, func(b []byte) []byte {
		hl := csrHeaderFixed + int(binary.LittleEndian.Uint32(b[24:28]))
		block0 := hl + 4
		for i := 0; i < 12 && block0+8+i < len(b); i++ {
			b[block0+8+i] = 0x80
		}
		return b
	})
}

// checkNamedErr asserts a loader rejection is a named error, never a bare
// or empty one: corrupt input must be attributable to the format layer.
func checkNamedErr(t *testing.T, err error, want string) {
	t.Helper()
	if err.Error() == "" {
		t.Fatalf("loader rejected input with an empty error message")
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("loader error %q is not a named %q error", err, want)
	}
}

// checkGraphInvariants asserts the structural invariants every accepted
// graph must satisfy: edge ids inside the vertex space and degree arrays
// consistent with the edge list.
func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.NumVertices()
	for i, e := range g.Edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			t.Fatalf("edge %d = %v escapes the %d-vertex space", i, e, n)
		}
	}
	if len(g.Edges) > 0 && n == 0 {
		t.Fatalf("%d edges but zero vertices", len(g.Edges))
	}
}

// FuzzReadCSR: the bulk loader must reject arbitrary bytes with a named
// csrg error or return a structurally valid graph — and never panic.
func FuzzReadCSR(f *testing.F) {
	addCSRSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			checkNamedErr(t, err, "csrg")
			return
		}
		checkGraphInvariants(t, g)
	})
}

// FuzzStreamCSR: the sequential and parallel streaming decoders must agree
// bit for bit — same accept/reject decision, same edge count, same max id,
// same edge sequence — on arbitrary bytes, across both format versions.
func FuzzStreamCSR(f *testing.F) {
	addCSRSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		stream := func(workers int) (int64, VertexID, uint64, error) {
			h := fnv.New64a()
			var buf [8]byte
			total, maxID, err := StreamCSRParallel("fuzz", bytes.NewReader(data), 7, workers, func(offset int64, edges []Edge) error {
				for _, e := range edges {
					binary.LittleEndian.PutUint32(buf[0:4], uint32(e.Src))
					binary.LittleEndian.PutUint32(buf[4:8], uint32(e.Dst))
					h.Write(buf[:])
				}
				return nil
			})
			return total, maxID, h.Sum64(), err
		}
		seqN, seqMax, seqHash, seqErr := stream(1)
		parN, parMax, parHash, parErr := stream(4)
		if seqErr != nil {
			checkNamedErr(t, seqErr, "csrg")
			if parErr == nil {
				t.Fatalf("sequential decoder rejected (%v) but parallel accepted", seqErr)
			}
			return
		}
		if parErr != nil {
			t.Fatalf("sequential decoder accepted but parallel rejected: %v", parErr)
		}
		if seqN != parN || seqMax != parMax || seqHash != parHash {
			t.Fatalf("decoders disagree: sequential (%d edges, max %d, hash %#x) vs parallel (%d, %d, %#x)",
				seqN, seqMax, seqHash, parN, parMax, parHash)
		}
	})
}

// FuzzParseEdgeList: the text parser (ReadEdgeList and its streaming core)
// must never panic, must name every rejection, and the materialized and
// streaming paths must agree on what they parsed.
func FuzzParseEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# SNAP comment\n% DIMACS comment\n\n5 1\t\n 1 5 \n"))
	f.Add([]byte("0 1 extra fields ignored\n"))
	f.Add([]byte("1\n"))                    // too few fields
	f.Add([]byte("a b\n"))                  // non-numeric
	f.Add([]byte("1 99999999999999999999")) // overflows uint32
	f.Add([]byte("4294967295 0\n"))         // max uint32 id
	f.Add([]byte("-1 2\n"))
	f.Add([]byte(strings.Repeat("#", 2000) + "\n0 1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var streamed int64
		var streamMax VertexID
		sn, smax, serr := StreamEdgeList("fuzz", bytes.NewReader(data), 3, func(offset int64, edges []Edge) error {
			if offset != streamed {
				t.Fatalf("batch offset %d, want %d", offset, streamed)
			}
			streamed += int64(len(edges))
			for _, e := range edges {
				if e.Src > streamMax {
					streamMax = e.Src
				}
				if e.Dst > streamMax {
					streamMax = e.Dst
				}
			}
			return nil
		})
		if serr == nil && smax >= 1<<22 {
			// Legal input, absurd vertex space: materializing would allocate
			// O(maxID) degree arrays. The streaming path has validated it;
			// skip the materialized comparison.
			return
		}
		g, err := ReadEdgeList("fuzz", bytes.NewReader(data))
		if err != nil {
			checkNamedErr(t, err, "edge list")
			if serr == nil {
				t.Fatalf("ReadEdgeList rejected (%v) but StreamEdgeList accepted", err)
			}
			return
		}
		if serr != nil {
			t.Fatalf("ReadEdgeList accepted but StreamEdgeList rejected: %v", serr)
		}
		checkGraphInvariants(t, g)
		if int64(len(g.Edges)) != sn || streamed != sn {
			t.Fatalf("edge counts disagree: materialized %d, streamed %d (delivered %d)", len(g.Edges), sn, streamed)
		}
		if len(g.Edges) > 0 && int(smax)+1 != g.NumVertices() {
			t.Fatalf("max id %d inconsistent with %d vertices", smax, g.NumVertices())
		}
	})
}
