package graph

import (
	"fmt"
	"math"
)

// DegreeClass is the paper's three-way degree-distribution taxonomy (§4.2,
// Table 4.2, and the decision trees in Figs 5.9/6.6/9.3): road networks are
// "Low-Degree", social networks are "Heavy-Tailed" (skewed but with fewer
// low-degree vertices than a pure power law would predict — Fig 5.8), and
// web graphs like UK-web are "Power-Law" (skewed with a full low-degree
// tail).
type DegreeClass int

const (
	// LowDegree marks graphs whose maximum degree is small (road networks).
	LowDegree DegreeClass = iota
	// HeavyTailed marks skewed graphs with relatively few low-degree
	// vertices (LiveJournal, Twitter, enwiki).
	HeavyTailed
	// PowerLaw marks skewed graphs whose low-degree counts track the
	// power-law regression line (UK-web).
	PowerLaw
)

// String implements fmt.Stringer.
func (c DegreeClass) String() string {
	switch c {
	case LowDegree:
		return "low-degree"
	case HeavyTailed:
		return "heavy-tailed"
	case PowerLaw:
		return "power-law"
	}
	return "unknown"
}

// ParseDegreeClass inverts String: it maps the serialized class names used
// by dataset manifests back to the taxonomy.
func ParseDegreeClass(s string) (DegreeClass, error) {
	switch s {
	case "low-degree":
		return LowDegree, nil
	case "heavy-tailed":
		return HeavyTailed, nil
	case "power-law":
		return PowerLaw, nil
	}
	return LowDegree, fmt.Errorf("graph: unknown degree class %q", s)
}

// PowerLawFit holds the result of a log-log least-squares fit of a degree
// histogram: count(d) ≈ C * d^(-Alpha). This is the regression line drawn
// through the paper's Figure 5.8.
type PowerLawFit struct {
	Alpha float64 // positive exponent of the fitted power law
	LogC  float64 // natural-log intercept
	R2    float64 // coefficient of determination of the log-log fit
	// LowDegreeRatio compares the observed number of degree-1 and degree-2
	// vertices to the number the fitted line predicts. ≈1 means the graph
	// follows the power law all the way down (UK-web); ≪1 means the graph
	// has a deficit of low-degree vertices (Twitter, LiveJournal).
	LowDegreeRatio float64
}

// Predict returns the fitted vertex count for degree d.
func (f PowerLawFit) Predict(d int) float64 {
	if d <= 0 {
		return 0
	}
	return math.Exp(f.LogC - f.Alpha*math.Log(float64(d)))
}

// FitPowerLaw fits count(d) = C·d^(-alpha) to a degree histogram by linear
// least squares in log-log space. Degree-0 entries are ignored.
func FitPowerLaw(hist map[int]int) PowerLawFit {
	degrees, counts := SortedHistogram(hist)
	n := 0
	var sx, sy, sxx, sxy float64
	for i, d := range degrees {
		if counts[i] <= 0 {
			continue
		}
		x := math.Log(float64(d))
		y := math.Log(float64(counts[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return PowerLawFit{}
	}
	fn := float64(n)
	denom := fn*sxx - sx*sx
	if denom == 0 {
		return PowerLawFit{}
	}
	slope := (fn*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / fn
	fit := PowerLawFit{Alpha: -slope, LogC: intercept}

	// R² of the log-log fit.
	meanY := sy / fn
	var ssTot, ssRes float64
	for i, d := range degrees {
		if counts[i] <= 0 {
			continue
		}
		x := math.Log(float64(d))
		y := math.Log(float64(counts[i]))
		pred := intercept + slope*x
		ssTot += (y - meanY) * (y - meanY)
		ssRes += (y - pred) * (y - pred)
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	}

	observedLow := float64(hist[1] + hist[2])
	predictedLow := fit.Predict(1) + fit.Predict(2)
	if predictedLow > 0 {
		fit.LowDegreeRatio = observedLow / predictedLow
	}
	return fit
}

// Classification bundles the degree class with the evidence behind it.
type Classification struct {
	Class     DegreeClass
	MaxDegree int
	AvgDegree float64
	Fit       PowerLawFit
}

// lowDegreeMaxDegree is the maximum-degree cutoff below which a graph is
// considered low-degree. The paper observes road networks max out at degree
// 12 while 2D partitioning's replication bound on a 160-partition cluster is
// 25 (§7.4); any graph whose hubs stay below that regime behaves like a
// road network for partitioning purposes.
const lowDegreeMaxDegree = 32

// lowDegreeRatioCutoff splits power-law from heavy-tailed: graphs whose
// observed low-degree population is at least this fraction of the power-law
// prediction follow the line (UK-web, Fig 5.8c); graphs below it have the
// low-degree deficit of social networks (Fig 5.8a/b).
const lowDegreeRatioCutoff = 0.25

// Classify determines the degree class of g using the same evidence the
// paper uses: maximum degree for the low-degree test, and the position of
// low-degree counts relative to the log-log regression line (Fig 5.8) to
// split heavy-tailed from power-law.
func Classify(g *Graph) Classification {
	c := Classification{
		MaxDegree: g.MaxDegree(),
		AvgDegree: g.AvgDegree(),
	}
	if c.MaxDegree <= lowDegreeMaxDegree {
		c.Class = LowDegree
		return c
	}
	// Total degree separates the classes best: social graphs have few
	// vertices with *total* degree 1–2 even though their in-degree tail
	// reaches low values.
	c.Fit = FitPowerLaw(g.DegreeHistogram())
	if c.Fit.LowDegreeRatio >= lowDegreeRatioCutoff {
		c.Class = PowerLaw
	} else {
		c.Class = HeavyTailed
	}
	return c
}
