package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testGraph builds a small deterministic graph with hubs, isolated ids and
// duplicate edges — the shapes that break naive serialization.
func testGraph(t *testing.T) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1}, {1, 2}, {2, 0}, {5, 1}, {1, 5}, {0, 1}, // duplicate edge
		{7, 0}, {3, 3}, // self loop; vertex 4 and 6 stay isolated
	}
	return FromEdges("csr-test", edges)
}

func writeCSRBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSR(g, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("name %q, want %q", got.Name, want.Name)
	}
	if got.NumVertices() != want.NumVertices() {
		t.Errorf("vertices %d, want %d", got.NumVertices(), want.NumVertices())
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Errorf("edge lists differ:\n got %v\nwant %v", got.Edges, want.Edges)
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := VertexID(v)
		if got.OutDegree(id) != want.OutDegree(id) || got.InDegree(id) != want.InDegree(id) {
			t.Errorf("vertex %d: degree (%d,%d), want (%d,%d)",
				v, got.OutDegree(id), got.InDegree(id), want.OutDegree(id), want.InDegree(id))
		}
		if !reflect.DeepEqual(got.OutNeighbors(id), want.OutNeighbors(id)) {
			t.Errorf("vertex %d: out-neighbors %v, want %v", v, got.OutNeighbors(id), want.OutNeighbors(id))
		}
		if !reflect.DeepEqual(got.InEdgeIDs(id), want.InEdgeIDs(id)) {
			t.Errorf("vertex %d: in-edge ids %v, want %v", v, got.InEdgeIDs(id), want.InEdgeIDs(id))
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	g := testGraph(t)
	got, err := ReadCSR(bytes.NewReader(writeCSRBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	// The written file includes CSR sections; the loaded graph must have
	// them attached (EnsureCSR is then free) and identical to a rebuild.
	if got.outIndex == nil {
		t.Error("loaded graph is missing the prebuilt CSR sections")
	}
	assertSameGraph(t, g, got)
}

func TestCSRRoundTripEmptyGraph(t *testing.T) {
	g := FromEdges("empty", nil)
	got, err := ReadCSR(bytes.NewReader(writeCSRBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 || got.NumEdges() != 0 {
		t.Errorf("got |V|=%d |E|=%d, want empty", got.NumVertices(), got.NumEdges())
	}
}

func TestCSRFileRoundTrip(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.csrg")
	if err := SaveCSR(g, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, got)
}

// TestCSRCorruptionDetection covers the failure modes the format must catch:
// truncation at every interesting boundary, a wrong magic, an unsupported
// version, unknown flags, and payload bit flips (checksum).
func TestCSRCorruptionDetection(t *testing.T) {
	g := testGraph(t)
	data := writeCSRBytes(t, g)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "truncated header"},
		{"truncated header", func(b []byte) []byte { return b[:10] }, "truncated header"},
		{"truncated name", func(b []byte) []byte { return b[:csrHeaderFixed+2] }, "truncated header name"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)/2] }, "truncated or oversized"},
		{"missing footer", func(b []byte) []byte { return b[:len(b)-4] }, "truncated or oversized"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xff) }, "truncated or oversized"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"wrong version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], 99)
			return b
		}, "unsupported format version"},
		{"unknown flags", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], 0x80)
			return b
		}, "unknown flags"},
		{"flipped payload bit", func(b []byte) []byte {
			b[len(b)-5] ^= 0x40 // last payload byte, just before the footer
			return b
		}, "checksum mismatch"},
		{"version zero", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], 0)
			return b
		}, "unsupported format version"},
		{"version from the future", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], CSRVersion2+1)
			return b
		}, "unsupported format version"},
		{"vertex count lies low", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 2) // real max id is 7
			return b
		}, ""},
		{"vertex count lies high", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1000)
			return b
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), data...))
			_, err := ReadCSR(bytes.NewReader(buf))
			if err == nil {
				t.Fatal("corrupt file accepted")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestCSRWriterStreamsWithoutMaterializing(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "streamed.csrg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewCSRWriter(f, g.Name)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in uneven batches to exercise chunk boundaries.
	for i := 0; i < len(g.Edges); i += 3 {
		end := i + 3
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		if err := w.Append(g.Edges[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	// Streamed files carry no CSR sections: adjacency is rebuilt lazily.
	if got.outIndex != nil {
		t.Error("streamed file unexpectedly carries CSR sections")
	}
	assertSameGraph(t, g, got)
}

func TestStreamCSRMatchesEdgeOrder(t *testing.T) {
	g := testGraph(t)
	data := writeCSRBytes(t, g)
	var streamed []Edge
	total, maxID, err := StreamCSR("t", bytes.NewReader(data), 3, func(offset int64, edges []Edge) error {
		if int(offset) != len(streamed) {
			t.Errorf("batch offset %d, want %d", offset, len(streamed))
		}
		streamed = append(streamed, edges...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(g.Edges)) || int(maxID) != g.NumVertices()-1 {
		t.Errorf("totals (%d, %d), want (%d, %d)", total, maxID, len(g.Edges), g.NumVertices()-1)
	}
	if !reflect.DeepEqual(streamed, g.Edges) {
		t.Errorf("streamed edges %v, want %v", streamed, g.Edges)
	}
}

func TestStreamCSRDetectsTruncationAndCorruption(t *testing.T) {
	g := testGraph(t)
	data := writeCSRBytes(t, g)

	if _, _, err := StreamCSR("t", bytes.NewReader(data[:len(data)-2]), 0, func(int64, []Edge) error { return nil }); err == nil {
		t.Error("truncated stream accepted")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-6] ^= 1 // inside the CSR sections
	if _, _, err := StreamCSR("t", bytes.NewReader(flipped), 0, func(int64, []Edge) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted stream: got %v, want checksum error", err)
	}
}

// TestLoadFileSniffsFormat pins the dispatch contract of the unified
// loaders: the same graph loads identically from text and binary files, and
// the streaming entry point sees identical edges from both.
func TestLoadFileSniffsFormat(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	binPath := filepath.Join(dir, "g.csrg")
	if err := SaveEdgeList(g, textPath); err != nil {
		t.Fatal(err)
	}
	if err := SaveCSR(g, binPath); err != nil {
		t.Fatal(err)
	}

	fromText, err := LoadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromText.Edges, fromBin.Edges) {
		t.Errorf("text and binary loads disagree:\n text %v\n bin  %v", fromText.Edges, fromBin.Edges)
	}
	if fromText.NumVertices() != fromBin.NumVertices() {
		t.Errorf("vertex counts disagree: %d vs %d", fromText.NumVertices(), fromBin.NumVertices())
	}

	collect := func(path string) []Edge {
		var out []Edge
		if _, _, err := StreamFile(path, 2, func(_ int64, edges []Edge) error {
			out = append(out, edges...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if tEdges, bEdges := collect(textPath), collect(binPath); !reflect.DeepEqual(tEdges, bEdges) {
		t.Errorf("StreamFile disagrees between formats:\n text %v\n bin  %v", tEdges, bEdges)
	}
}

func TestIsCSRPath(t *testing.T) {
	for path, want := range map[string]bool{
		"g.csrg": true, "G.CSRG": true, "dir/road.s2.csrg": true,
		"g.txt": false, "csrg": false, "g.csrg.txt": false,
	} {
		if got := IsCSRPath(path); got != want {
			t.Errorf("IsCSRPath(%q) = %v, want %v", path, got, want)
		}
	}
}
