package graph

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The load-format benchmark: the same 1M-edge graph stored as a text edge
// list and as .csrg, loaded repeatedly. The binary path must be ≥5× faster —
// it replaces a line scan plus two integer parses per edge with bulk
// fixed-width decodes — which is what makes the dataset disk cache worth
// maintaining. CI uploads the output as an artifact.
//
//	go test -bench 'BenchmarkLoad(CSR|EdgeListText)' -run '^$' ./internal/graph/

const benchEdges = 1_000_000

// benchGraph1M builds a deterministic 1M-edge graph with a skewed degree
// distribution (hash-mixed endpoints over 200k vertices).
func benchGraph1M() *Graph {
	edges := make([]Edge, benchEdges)
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	const n = 200_000
	for i := range edges {
		src := VertexID(next() % n)
		dst := VertexID(next() % n)
		if next()%8 == 0 { // a hub tail, so parsing costs vary by line length
			dst = VertexID(next() % 64)
		}
		edges[i] = Edge{src, dst}
	}
	return FromEdges("bench-1m", edges)
}

var (
	benchOnce sync.Once
	benchDir  string
	benchErr  error
)

// benchFiles writes the text and binary forms once per process and returns
// their paths.
func benchFiles(b *testing.B) (textPath, csrPath string) {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "csrbench")
		if benchErr != nil {
			return
		}
		g := benchGraph1M()
		if benchErr = SaveEdgeList(g, filepath.Join(benchDir, "g.txt")); benchErr != nil {
			return
		}
		if benchErr = SaveCSR(g, filepath.Join(benchDir, "g.csrg")); benchErr != nil {
			return
		}
		benchErr = SaveCSRVersion(g, filepath.Join(benchDir, "g.v2.csrg"), CSRVersion2)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return filepath.Join(benchDir, "g.txt"), filepath.Join(benchDir, "g.csrg")
}

func reportLoadMetrics(b *testing.B, path string) {
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ReportMetric(float64(benchEdges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkLoadCSR measures loading the 1M-edge graph from its binary form
// (checksum verification included).
func BenchmarkLoadCSR(b *testing.B) {
	_, csrPath := benchFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadCSR(csrPath)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() != benchEdges {
			b.Fatalf("loaded %d edges", g.NumEdges())
		}
	}
	reportLoadMetrics(b, csrPath)
}

// BenchmarkLoadEdgeListText is the baseline: the same graph parsed from the
// text edge list.
func BenchmarkLoadEdgeListText(b *testing.B) {
	textPath, _ := benchFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadEdgeList(textPath)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() != benchEdges {
			b.Fatalf("loaded %d edges", g.NumEdges())
		}
	}
	reportLoadMetrics(b, textPath)
}

// BenchmarkLoadCSRMmap pins the zero-copy path: the mapping is validated
// (CRC) and the sections are aliased in place, so the op cost is dominated
// by the checksum scan and the bounds-check pass.
func BenchmarkLoadCSRMmap(b *testing.B) {
	if !MmapSupported() {
		b.Skip("mmap path unavailable on this platform")
	}
	_, csrPath := benchFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadCSR(csrPath)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() != benchEdges {
			b.Fatalf("loaded %d edges", g.NumEdges())
		}
	}
	reportLoadMetrics(b, csrPath)
}

// BenchmarkLoadCSRRead is the same file through the portable
// read-everything path, the denominator of the mmap speedup claim.
func BenchmarkLoadCSRRead(b *testing.B) {
	_, csrPath := benchFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadCSRWith(csrPath, CSRLoadOptions{DisableMmap: true})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() != benchEdges {
			b.Fatalf("loaded %d edges", g.NumEdges())
		}
	}
	reportLoadMetrics(b, csrPath)
}

// BenchmarkLoadCSRv2 loads the compressed form (parallel block decode).
func BenchmarkLoadCSRv2(b *testing.B) {
	benchFiles(b)
	v2Path := filepath.Join(benchDir, "g.v2.csrg")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadCSR(v2Path)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() != benchEdges {
			b.Fatalf("loaded %d edges", g.NumEdges())
		}
	}
	reportLoadMetrics(b, v2Path)
}

// BenchmarkStreamCSRv2Parallel streams the compressed form with the block
// decode fanned out over GOMAXPROCS workers.
func BenchmarkStreamCSRv2Parallel(b *testing.B) {
	benchFiles(b)
	v2Path := filepath.Join(benchDir, "g.v2.csrg")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(v2Path)
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		if total, _, err = StreamCSRParallel(v2Path, f, 0, 0, func(int64, []Edge) error { return nil }); err != nil {
			b.Fatal(err)
		}
		f.Close()
		if total != benchEdges {
			b.Fatalf("streamed %d edges", total)
		}
	}
	reportLoadMetrics(b, v2Path)
}

// TestCSRLoadSpeedupAt1MEdges measures the acceptance bar directly — binary
// loads of the 1M-edge graph must beat text parsing by ≥5× — with a single
// timed pass per format. The margin is wide (binary loading is typically
// 20–40× faster), so one pass is stable enough; skipped in -short runs.
func TestCSRLoadSpeedupAt1MEdges(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-edge load comparison skipped in -short mode")
	}
	dir := t.TempDir()
	g := benchGraph1M()
	textPath := filepath.Join(dir, "g.txt")
	csrPath := filepath.Join(dir, "g.csrg")
	if err := SaveEdgeList(g, textPath); err != nil {
		t.Fatal(err)
	}
	if err := SaveCSR(g, csrPath); err != nil {
		t.Fatal(err)
	}

	timeIt := func(load func() error) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := load(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	textNs := timeIt(func() error { _, err := LoadEdgeList(textPath); return err })
	csrNs := timeIt(func() error { _, err := LoadCSR(csrPath); return err })
	speedup := textNs / csrNs
	t.Logf("text %.1fms, csrg %.1fms, speedup %.1fx", textNs/1e6, csrNs/1e6, speedup)
	if speedup < 5 {
		t.Errorf("binary load only %.1fx faster than text at 1M edges, want ≥5x", speedup)
	}
}
