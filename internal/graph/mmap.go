package graph

// mmapRef owns one read-only file mapping. A Graph whose slices alias the
// mapping pins it through its mmap field; the platform layer attaches a
// finalizer so the pages are returned once the graph is collected.
type mmapRef struct {
	data []byte
}

// unmap releases the mapping. Idempotent; must only be called once nothing
// aliases r.data.
func (r *mmapRef) unmap() {
	if r.data != nil {
		munmapBytes(r.data)
		r.data = nil
	}
}

// MmapSupported reports whether the zero-copy memory-mapped load path can
// engage on this platform: a unix mmap syscall plus a little-endian host,
// so the on-disk section layout is also the in-memory layout.
func MmapSupported() bool { return mmapAvailable && hostLittleEndian }
