package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func smallGraph() *Graph {
	// 0→1, 0→2, 1→2, 2→3, 3→0
	return FromEdges("small", []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0},
	})
}

func TestFromEdgesCounts(t *testing.T) {
	g := smallGraph()
	if got := g.NumVertices(); got != 4 {
		t.Fatalf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 5 {
		t.Fatalf("NumEdges = %d, want 5", got)
	}
}

func TestDegrees(t *testing.T) {
	g := smallGraph()
	tests := []struct {
		v       VertexID
		out, in int
	}{
		{0, 2, 1},
		{1, 1, 1},
		{2, 1, 2},
		{3, 1, 1},
	}
	for _, tc := range tests {
		if got := g.OutDegree(tc.v); got != tc.out {
			t.Errorf("OutDegree(%d) = %d, want %d", tc.v, got, tc.out)
		}
		if got := g.InDegree(tc.v); got != tc.in {
			t.Errorf("InDegree(%d) = %d, want %d", tc.v, got, tc.in)
		}
		if got := g.Degree(tc.v); got != tc.out+tc.in {
			t.Errorf("Degree(%d) = %d, want %d", tc.v, got, tc.out+tc.in)
		}
	}
}

func TestNeighbors(t *testing.T) {
	g := smallGraph()
	out := g.OutNeighbors(0)
	if len(out) != 2 {
		t.Fatalf("OutNeighbors(0) = %v, want 2 entries", out)
	}
	seen := map[VertexID]bool{}
	for _, u := range out {
		seen[u] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("OutNeighbors(0) = %v, want {1,2}", out)
	}
	in := g.InNeighbors(2)
	if len(in) != 2 {
		t.Fatalf("InNeighbors(2) = %v, want 2 entries", in)
	}
}

func TestEdgeIDsParallelToNeighbors(t *testing.T) {
	g := smallGraph()
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(v)
		eids := g.OutEdgeIDs(v)
		if len(nbrs) != len(eids) {
			t.Fatalf("v=%d: len mismatch", v)
		}
		for i := range nbrs {
			e := g.Edges[eids[i]]
			if e.Src != v || e.Dst != nbrs[i] {
				t.Errorf("v=%d edge id %d = %v, want src=%d dst=%d", v, eids[i], e, v, nbrs[i])
			}
		}
		inbrs := g.InNeighbors(v)
		ieids := g.InEdgeIDs(v)
		for i := range inbrs {
			e := g.Edges[ieids[i]]
			if e.Dst != v || e.Src != inbrs[i] {
				t.Errorf("v=%d in-edge id %d = %v, want src=%d dst=%d", v, ieids[i], e, inbrs[i], v)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges("empty", nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if got := g.AvgDegree(); got != 0 {
		t.Errorf("AvgDegree = %v, want 0", got)
	}
	if got := g.MaxDegree(); got != 0 {
		t.Errorf("MaxDegree = %v, want 0", got)
	}
}

func TestMaxAndAvgDegree(t *testing.T) {
	g := smallGraph()
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	want := 2.0 * 5 / 4
	if got := g.AvgDegree(); got != want {
		t.Errorf("AvgDegree = %v, want %v", got, want)
	}
	if got := g.MaxInDegree(); got != 2 {
		t.Errorf("MaxInDegree = %d, want 2", got)
	}
}

func TestInDegreeHistogram(t *testing.T) {
	g := smallGraph()
	h := g.InDegreeHistogram()
	if h[1] != 3 || h[2] != 1 {
		t.Errorf("histogram = %v, want {1:3, 2:1}", h)
	}
}

func TestSortedHistogramSkipsZero(t *testing.T) {
	degs, counts := SortedHistogram(map[int]int{0: 5, 3: 2, 1: 7})
	if len(degs) != 2 || degs[0] != 1 || degs[1] != 3 {
		t.Fatalf("degrees = %v, want [1 3]", degs)
	}
	if counts[0] != 7 || counts[1] != 2 {
		t.Fatalf("counts = %v, want [7 2]", counts)
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% also comment
0 1
1 2

2 0 extra-field-ok
`
	g, err := ReadEdgeList("test", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0", "a b", "0 b"} {
		if _, err := ReadEdgeList("bad", strings.NewReader(bad)); err == nil {
			t.Errorf("ReadEdgeList(%q): want error, got nil", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := smallGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("round trip: got %v, want %v", g2, g)
	}
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d: got %v, want %v", i, g2.Edges[i], g.Edges[i])
		}
	}
}

func TestDegreeSumsProperty(t *testing.T) {
	// For any edge list, sum of out-degrees == sum of in-degrees == |E|,
	// and CSR adjacency sizes match degrees.
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{VertexID(raw[i] % 512), VertexID(raw[i+1] % 512)})
		}
		g := FromEdges("prop", edges)
		sumOut, sumIn := 0, 0
		for v := 0; v < g.NumVertices(); v++ {
			vid := VertexID(v)
			sumOut += g.OutDegree(vid)
			sumIn += g.InDegree(vid)
			if len(g.OutNeighbors(vid)) != g.OutDegree(vid) {
				return false
			}
			if len(g.InNeighbors(vid)) != g.InDegree(vid) {
				return false
			}
		}
		return sumOut == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
