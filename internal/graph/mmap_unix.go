//go:build unix

package graph

import (
	"os"
	"runtime"
	"syscall"
)

const mmapAvailable = true

// mmapFile maps size bytes of f read-only. The returned ref carries a
// finalizer, so an abandoned mapping is eventually released even if no one
// calls unmap explicitly.
func mmapFile(f *os.File, size int64) (*mmapRef, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	ref := &mmapRef{data: data}
	runtime.SetFinalizer(ref, (*mmapRef).unmap)
	return ref, nil
}

func munmapBytes(b []byte) { _ = syscall.Munmap(b) }
