package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// .csrg format version 2: compressed edge blocks.
//
// The v1 edge section spends 8 bytes per edge no matter what the ids look
// like. Real graph streams are far more regular than that — generators and
// crawls emit edges grouped by source, and web-graph destinations cluster
// near their source (locality) — so consecutive ids are close and their
// differences are small. v2 exploits this: each edge stores
//
//	uvarint(zigzag(src − prevSrc)), uvarint(zigzag(dst − src))
//
// where prevSrc is the previous edge's src *within the block* (0 for the
// block's first edge). Small deltas take 1–2 bytes, so typical sections
// shrink to 2–4 bytes per edge. Zigzag keeps backwards jumps cheap too.
//
// Edges are grouped into blocks of csrV2BlockEdges, each preceded by
//
//	uint32 edgeCount, uint32 byteLen
//
// and the whole section by a uint32 block count. Deltas reset at block
// boundaries, so every block decodes with no context beyond its header —
// which is what lets LoadCSR and StreamCSRParallel fan the decode out over
// GOMAXPROCS workers while preserving stream order.

// csrV2BlockEdges is the number of edges per compressed block. 64Ki edges
// ≈ 128–512 KiB decoded — big enough to amortize per-block overhead, small
// enough that a round of GOMAXPROCS blocks fits comfortably in memory.
const csrV2BlockEdges = 1 << 16

// csrV2MaxBytesPerEdge bounds a block's declared byte length relative to
// its edge count: a uvarint of a zigzagged 33-bit delta is at most 5 bytes,
// two fields per edge. Anything larger is corruption, rejected before any
// allocation trusts it.
const csrV2MaxBytesPerEdge = 10

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendV2Block appends one block's compressed payload to dst and returns
// the extended slice.
func appendV2Block(dst []byte, edges []Edge) []byte {
	prevSrc := uint32(0)
	for _, e := range edges {
		dst = binary.AppendUvarint(dst, zigzag(int64(e.Src)-int64(prevSrc)))
		dst = binary.AppendUvarint(dst, zigzag(int64(e.Dst)-int64(e.Src)))
		prevSrc = e.Src
	}
	return dst
}

// decodeV2Block decodes one block payload into out (whose length is the
// block's declared edge count), bounds-checking every id and folding the
// maximum id into maxID. base is the global index of the block's first edge
// and blockIdx its position in the file; both name the offset in errors.
func decodeV2Block(src string, payload []byte, numVertices uint64, base int64, blockIdx int, out []Edge, maxID *VertexID) error {
	pos := 0
	prevSrc := int64(0)
	for i := range out {
		ds, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return fmt.Errorf("csrg %s: block %d: bad src varint at block byte %d (edge %d)", src, blockIdx, pos, base+int64(i))
		}
		pos += n
		s := prevSrc + unzigzag(ds)
		dd, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return fmt.Errorf("csrg %s: block %d: bad dst varint at block byte %d (edge %d)", src, blockIdx, pos, base+int64(i))
		}
		pos += n
		d := s + unzigzag(dd)
		if s < 0 || uint64(s) >= numVertices || d < 0 || uint64(d) >= numVertices {
			return fmt.Errorf("csrg %s: block %d: edge %d (%d→%d) outside declared vertex range [0,%d)", src, blockIdx, base+int64(i), s, d, numVertices)
		}
		out[i] = Edge{VertexID(s), VertexID(d)}
		if out[i].Src > *maxID {
			*maxID = out[i].Src
		}
		if out[i].Dst > *maxID {
			*maxID = out[i].Dst
		}
		prevSrc = s
	}
	if pos != len(payload) {
		return fmt.Errorf("csrg %s: block %d: %d trailing bytes after %d edges", src, blockIdx, len(payload)-pos, len(out))
	}
	return nil
}

// WriteCSR2 writes g in .csrg version-2 form: delta+varint-compressed edge
// blocks, no adjacency sections (readers rebuild them lazily). The edge
// section preserves g.Edges order exactly.
func WriteCSR2(g *Graph, w io.Writer) error {
	m := g.NumEdges()
	if m > csrMaxEdges {
		return fmt.Errorf("csrg %s: %d edges exceed the int32 edge-id space", g.Name, m)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := writeCSRHeader(bw, g.Name, CSRVersion2, 0, uint64(g.NumVertices()), uint64(m)); err != nil {
		return err
	}
	numBlocks := (m + csrV2BlockEdges - 1) / csrV2BlockEdges
	var quad [4]byte
	binary.LittleEndian.PutUint32(quad[:], uint32(numBlocks))
	if _, err := bw.Write(quad[:]); err != nil {
		return err
	}
	crc := uint32(0)
	sink := func(chunk []byte) error {
		crc = crc32.Update(crc, castagnoli, chunk)
		_, err := bw.Write(chunk)
		return err
	}
	var enc []byte
	for lo := 0; lo < m; lo += csrV2BlockEdges {
		hi := lo + csrV2BlockEdges
		if hi > m {
			hi = m
		}
		enc = appendV2Block(enc[:0], g.Edges[lo:hi])
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(hi-lo))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(enc)))
		if err := sink(hdr[:]); err != nil {
			return err
		}
		if err := sink(enc); err != nil {
			return err
		}
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc)
	if _, err := bw.Write(foot[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// decodeCSRv2 decodes a whole in-memory v2 file: verify the checksum, index
// the blocks (every structural field is validated before any decode trusts
// it), then decode independent blocks on parallel workers straight into
// their slots of the shared edge slice.
func decodeCSRv2(src string, data []byte, off int, h csrHeader, o CSRLoadOptions) (*Graph, error) {
	if int64(len(data)) < int64(off)+8 {
		return nil, fmt.Errorf("csrg %s: truncated v2 payload (%d bytes)", src, len(data))
	}
	payload := data[off : len(data)-4]
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(payload[4:], castagnoli); got != stored {
		return nil, fmt.Errorf("csrg %s: payload checksum mismatch (%#08x != stored %#08x): file is corrupt", src, got, stored)
	}
	m := int(h.numEdges)
	n := int(h.numVertices)
	numBlocks := int(binary.LittleEndian.Uint32(payload[0:4]))
	if int64(numBlocks)*8 > int64(len(payload)-4) {
		return nil, fmt.Errorf("csrg %s: %d blocks cannot fit in %d payload bytes", src, numBlocks, len(payload)-4)
	}

	type blockRef struct {
		count int
		base  int64
		data  []byte
	}
	blocks := make([]blockRef, 0, numBlocks)
	pos := 4
	var base int64
	for bidx := 0; bidx < numBlocks; bidx++ {
		if len(payload)-pos < 8 {
			return nil, fmt.Errorf("csrg %s: truncated header of block %d at payload byte %d", src, bidx, pos)
		}
		cnt := int(binary.LittleEndian.Uint32(payload[pos:]))
		bl := int(binary.LittleEndian.Uint32(payload[pos+4:]))
		pos += 8
		if int64(cnt) > int64(m)-base {
			return nil, fmt.Errorf("csrg %s: block %d declares %d edges but only %d of the header's %d remain", src, bidx, cnt, int64(m)-base, m)
		}
		if bl > len(payload)-pos {
			return nil, fmt.Errorf("csrg %s: block %d declares %d payload bytes but only %d remain", src, bidx, bl, len(payload)-pos)
		}
		blocks = append(blocks, blockRef{count: cnt, base: base, data: payload[pos : pos+bl]})
		pos += bl
		base += int64(cnt)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("csrg %s: %d trailing payload bytes after %d blocks", src, len(payload)-pos, numBlocks)
	}
	if base != int64(m) {
		return nil, fmt.Errorf("csrg %s: blocks hold %d edges, header says %d", src, base, m)
	}
	if m == 0 && n != 0 {
		return nil, fmt.Errorf("csrg %s: %d vertices with no edges (writers derive the vertex set from edges)", src, n)
	}

	edges := make([]Edge, m)
	workers := o.Workers
	if workers <= 0 {
		//graphlint:nondet worker-count default only; output is worker-count-independent (csr_v2_test.go)
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	var maxID VertexID
	if workers <= 1 {
		for bidx, b := range blocks {
			if err := decodeV2Block(src, b.data, h.numVertices, b.base, bidx, edges[b.base:b.base+int64(b.count)], &maxID); err != nil {
				return nil, err
			}
		}
	} else {
		var next atomic.Int64
		maxIDs := make([]VertexID, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					bidx := int(next.Add(1)) - 1
					if bidx >= len(blocks) {
						return
					}
					b := blocks[bidx]
					if err := decodeV2Block(src, b.data, h.numVertices, b.base, bidx, edges[b.base:b.base+int64(b.count)], &maxIDs[w]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w := range errs {
			if errs[w] != nil {
				return nil, errs[w]
			}
			if maxIDs[w] > maxID {
				maxID = maxIDs[w]
			}
		}
	}
	if m > 0 && int64(maxID)+1 != int64(n) {
		return nil, fmt.Errorf("csrg %s: header says %d vertices but max edge id is %d", src, n, maxID)
	}
	g := &Graph{Name: h.name, Edges: edges, numVertices: n}
	g.buildDegrees()
	return g, nil
}

// streamCSRv2 is the v2 tail of StreamCSR/StreamCSRParallel: br is
// positioned just past the header. Blocks are read sequentially (the CRC
// must see every byte in file order) and decoded either inline or on a
// round of workers; fn sees batches in stream order from this goroutine.
func streamCSRv2(name string, br *bufio.Reader, h csrHeader, batchSize, workers int, fn func(offset int64, edges []Edge) error) (int64, VertexID, error) {
	if workers <= 0 {
		//graphlint:nondet worker-count default only; output is worker-count-independent (csr_v2_test.go)
		workers = runtime.GOMAXPROCS(0)
	}
	var quad [4]byte
	if _, err := io.ReadFull(br, quad[:]); err != nil {
		return 0, 0, fmt.Errorf("csrg %s: reading block count: %w", name, err)
	}
	numBlocks := int(binary.LittleEndian.Uint32(quad[:]))
	m := int64(h.numEdges)
	crc := uint32(0)
	var total int64 // edges delivered to fn
	var read int64  // edges read off the wire (≥ total under read-ahead)
	var maxID VertexID

	// emit chops a decoded block into ≤batchSize batches for fn.
	emit := func(edges []Edge) error {
		for len(edges) > 0 {
			n := len(edges)
			if n > batchSize {
				n = batchSize
			}
			if err := fn(total, edges[:n]); err != nil {
				return err
			}
			total += int64(n)
			edges = edges[n:]
		}
		return nil
	}

	// readBlock pulls the next block header + payload off the wire into a
	// pooled buffer, updating the CRC, and validates the structural fields.
	readBlock := func(bidx int) (cnt int, payload *[]byte, err error) {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return 0, nil, fmt.Errorf("csrg %s: truncated header of block %d (edge %d of %d): %w", name, bidx, read, m, err)
		}
		crc = crc32.Update(crc, castagnoli, hdr[:])
		cnt = int(binary.LittleEndian.Uint32(hdr[0:4]))
		bl := int(binary.LittleEndian.Uint32(hdr[4:8]))
		if int64(cnt) > m-read {
			return 0, nil, fmt.Errorf("csrg %s: block %d declares %d edges but only %d of the header's %d remain", name, bidx, cnt, m-read, m)
		}
		if bl > (cnt+1)*csrV2MaxBytesPerEdge {
			return 0, nil, fmt.Errorf("csrg %s: block %d declares %d bytes for %d edges (max %d/edge)", name, bidx, bl, cnt, csrV2MaxBytesPerEdge)
		}
		payload = getByteBuf(bl)
		buf := (*payload)[:bl]
		if _, err := io.ReadFull(br, buf); err != nil {
			putByteBuf(payload)
			return 0, nil, fmt.Errorf("csrg %s: truncated payload of block %d (edge %d of %d): %w", name, bidx, read, m, err)
		}
		crc = crc32.Update(crc, castagnoli, buf)
		*payload = buf
		read += int64(cnt)
		return cnt, payload, nil
	}

	if workers <= 1 {
		blockp := getEdgeBuf(csrV2BlockEdges)
		defer putEdgeBuf(blockp)
		for bidx := 0; bidx < numBlocks; bidx++ {
			cnt, payload, err := readBlock(bidx)
			if err != nil {
				return total, maxID, err
			}
			if cap(*blockp) < cnt {
				*blockp = make([]Edge, 0, cnt)
			}
			out := (*blockp)[:cnt]
			err = decodeV2Block(name, *payload, h.numVertices, total, bidx, out, &maxID)
			putByteBuf(payload)
			if err != nil {
				return total, maxID, err
			}
			if err := emit(out); err != nil {
				return total, maxID, err
			}
		}
	} else {
		// Read ahead a round of blocks, decode the round in parallel, then
		// deliver in order. Memory stays O(workers · block).
		type job struct {
			bidx    int
			base    int64
			payload *[]byte
			out     *[]Edge
			err     error
		}
		jobs := make([]job, 0, workers)
		maxIDs := make([]VertexID, workers)
		for bidx := 0; bidx < numBlocks; {
			jobs = jobs[:0]
			for len(jobs) < workers && bidx < numBlocks {
				base := read
				cnt, payload, err := readBlock(bidx)
				if err != nil {
					for _, j := range jobs {
						putByteBuf(j.payload)
						putEdgeBuf(j.out)
					}
					return total, maxID, err
				}
				out := getEdgeBuf(cnt)
				*out = (*out)[:cnt]
				jobs = append(jobs, job{bidx: bidx, base: base, payload: payload, out: out})
				bidx++
			}
			var wg sync.WaitGroup
			for i := range jobs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					j := &jobs[i]
					j.err = decodeV2Block(name, *j.payload, h.numVertices, j.base, j.bidx, *j.out, &maxIDs[i])
				}(i)
			}
			wg.Wait()
			for i := range jobs {
				j := &jobs[i]
				putByteBuf(j.payload)
				if j.err == nil {
					if maxIDs[i] > maxID {
						maxID = maxIDs[i]
					}
					j.err = emit(*j.out)
				}
				putEdgeBuf(j.out)
				if j.err != nil {
					for _, rest := range jobs[i+1:] {
						putByteBuf(rest.payload)
						putEdgeBuf(rest.out)
					}
					return total, maxID, j.err
				}
			}
		}
	}
	if read != m {
		return total, maxID, fmt.Errorf("csrg %s: blocks hold %d edges, header says %d", name, read, m)
	}
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return total, maxID, fmt.Errorf("csrg %s: missing checksum footer: %w", name, err)
	}
	if stored := binary.LittleEndian.Uint32(foot[:]); stored != crc {
		return total, maxID, fmt.Errorf("csrg %s: payload checksum mismatch (%#08x != stored %#08x): file is corrupt", name, crc, stored)
	}
	if total > 0 && int64(maxID)+1 != int64(h.numVertices) {
		return total, maxID, fmt.Errorf("csrg %s: header says %d vertices but max edge id is %d", name, h.numVertices, maxID)
	}
	return total, maxID, nil
}
