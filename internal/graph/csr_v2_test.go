package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// blockGraph builds a deterministic graph big enough to span several v2
// blocks, with the mostly-source-sorted, locality-heavy shape real edge
// streams have (plus deliberate backward jumps to exercise zigzag).
func blockGraph(t testing.TB, numEdges int) *Graph {
	t.Helper()
	edges := make([]Edge, numEdges)
	n := uint32(numEdges/4 + 2)
	x := uint64(0x2545f4914f6cdd1d)
	for i := range edges {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		src := uint32(i) / 4 % n
		dst := (src + uint32(x%64)) % n
		if x%11 == 0 {
			dst = uint32(x>>32) % n // occasional long-range jump
		}
		edges[i] = Edge{src, dst}
	}
	return FromEdges("block-test", edges)
}

func writeCSR2Bytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSR2(g, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refixV2CRC recomputes the checksum footer of a v2 file after a test
// mutated its payload, so the decoder's own validation — not the CRC — is
// what must catch the corruption.
func refixV2CRC(b []byte) []byte {
	hl := csrHeaderFixed + int(binary.LittleEndian.Uint32(b[24:28]))
	crc := crc32.Checksum(b[hl+4:len(b)-4], castagnoli)
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc)
	return b
}

func TestCSRv2RoundTrip(t *testing.T) {
	for _, numEdges := range []int{0, 1, 7, csrV2BlockEdges, csrV2BlockEdges + 1, 3*csrV2BlockEdges + 17} {
		t.Run(fmt.Sprint(numEdges), func(t *testing.T) {
			var g *Graph
			if numEdges == 0 {
				g = FromEdges("block-test", nil)
			} else {
				g = blockGraph(t, numEdges)
			}
			data := writeCSR2Bytes(t, g)
			got, err := ReadCSR(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if got.outIndex != nil {
				t.Error("v2 file unexpectedly carries CSR sections")
			}
			if got.Name != g.Name || got.NumVertices() != g.NumVertices() {
				t.Errorf("got %v, want %v", got, g)
			}
			if len(got.Edges) != len(g.Edges) || (numEdges > 0 && !reflect.DeepEqual(got.Edges, g.Edges)) {
				t.Error("edge lists differ after v2 round trip")
			}
		})
	}
}

func TestCSRv2FileRoundTripAllPaths(t *testing.T) {
	g := blockGraph(t, 2*csrV2BlockEdges+333)
	path := filepath.Join(t.TempDir(), "g.csrg")
	if err := SaveCSRVersion(g, path, CSRVersion2); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := CSRFileVersion(path); err != nil || !ok || v != CSRVersion2 {
		t.Fatalf("CSRFileVersion = (%d, %v, %v), want (2, true, nil)", v, ok, err)
	}
	for _, tc := range []struct {
		name string
		opts CSRLoadOptions
	}{
		{"auto", CSRLoadOptions{}},
		{"portable", CSRLoadOptions{DisableMmap: true}},
		{"serial", CSRLoadOptions{Workers: 1}},
		{"parallel", CSRLoadOptions{Workers: 4}},
	} {
		got, err := LoadCSRWith(path, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got.Edges, g.Edges) || got.NumVertices() != g.NumVertices() {
			t.Errorf("%s: loaded graph differs", tc.name)
		}
	}
}

// TestCSRv2SmallerThanV1 pins the point of the format: on a stream with
// source locality the delta+varint blocks are far smaller than fixed-width
// records. The 25% acceptance bar for real datasets is gated in the
// load.speed experiment; here the shape is synthetic but representative.
func TestCSRv2SmallerThanV1(t *testing.T) {
	g := blockGraph(t, csrV2BlockEdges*2)
	var v1, v2 bytes.Buffer
	// Compare edge payloads only: strip v1's optional adjacency sections by
	// writing through the streaming writers (no sections either way).
	for _, w := range []struct {
		buf     *bytes.Buffer
		version int
	}{{&v1, CSRVersion1}, {&v2, CSRVersion2}} {
		f, err := os.CreateTemp(t.TempDir(), "csr")
		if err != nil {
			t.Fatal(err)
		}
		cw, err := NewCSRWriterVersion(f, g.Name, w.version)
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.Append(g.Edges); err != nil {
			t.Fatal(err)
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := w.buf.ReadFrom(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if v2.Len() >= v1.Len()*3/4 {
		t.Errorf("v2 file is %d bytes vs v1 %d — want ≥25%% smaller", v2.Len(), v1.Len())
	}
}

func TestCSRWriterV2StreamsAndReloads(t *testing.T) {
	g := blockGraph(t, csrV2BlockEdges+4567)
	path := filepath.Join(t.TempDir(), "streamed.csrg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewCSRWriterVersion(f, g.Name, CSRVersion2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(g.Edges); i += 1000 {
		end := i + 1000
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		if err := w.Append(g.Edges[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Edges, g.Edges) || got.Name != g.Name {
		t.Error("streamed v2 file reloads differently")
	}
	// The bulk and streaming writers must produce byte-identical files:
	// same block geometry, same CRC rule.
	bulk := writeCSR2Bytes(t, got)
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bulk, onDisk) {
		t.Error("bulk WriteCSR2 and streaming CSRWriter produce different bytes")
	}
}

func TestStreamCSRv2MatchesEdgeOrder(t *testing.T) {
	g := blockGraph(t, csrV2BlockEdges+999)
	data := writeCSR2Bytes(t, g)
	for _, workers := range []int{1, 3, 8} {
		for _, batchSize := range []int{1000, csrV2BlockEdges, 1 << 20} {
			var streamed []Edge
			total, maxID, err := StreamCSRParallel("t", bytes.NewReader(data), batchSize, workers, func(offset int64, edges []Edge) error {
				if int(offset) != len(streamed) {
					t.Errorf("w=%d b=%d: batch offset %d, want %d", workers, batchSize, offset, len(streamed))
				}
				streamed = append(streamed, edges...)
				return nil
			})
			if err != nil {
				t.Fatalf("w=%d b=%d: %v", workers, batchSize, err)
			}
			if total != int64(len(g.Edges)) || int(maxID) != g.NumVertices()-1 {
				t.Errorf("w=%d b=%d: totals (%d, %d), want (%d, %d)", workers, batchSize, total, maxID, len(g.Edges), g.NumVertices()-1)
			}
			if !reflect.DeepEqual(streamed, g.Edges) {
				t.Errorf("w=%d b=%d: streamed edges differ from original order", workers, batchSize)
			}
		}
	}
}

// TestCSRv2CorruptionDetection is the v2 corruption matrix: every mutation
// must surface as a named error — never a panic, never silent acceptance —
// through the bulk loader, the mmap loader, and both streaming decoders.
// Mutations below the checksum line call refixV2CRC so the structural
// validation itself is what trips.
func TestCSRv2CorruptionDetection(t *testing.T) {
	g := blockGraph(t, csrV2BlockEdges+100) // two blocks
	data := writeCSR2Bytes(t, g)
	hl := csrHeaderFixed + int(binary.LittleEndian.Uint32(data[24:28]))
	block0 := hl + 4 // first block header

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		// Truncations surface as "truncated block" from the streaming
		// decoders and as a checksum mismatch from the bulk loaders (the
		// cut shifts the CRC window); both are named rejections, so these
		// two cases only pin that *some* error comes back.
		{"truncated block payload", func(b []byte) []byte {
			return b[:block0+8+10]
		}, ""},
		{"truncated block header", func(b []byte) []byte {
			return b[:block0+5]
		}, ""},
		{"flipped payload bit", func(b []byte) []byte {
			b[block0+8+3] ^= 0x10
			return b
		}, "checksum mismatch"},
		{"bad varint", func(b []byte) []byte {
			// 0x80 continuation bytes forever: the varint never terminates
			// inside the block.
			for i := 0; i < 12; i++ {
				b[block0+8+i] = 0x80
			}
			return refixV2CRC(b)
		}, "varint"},
		{"wrong block length (short)", func(b []byte) []byte {
			bl := binary.LittleEndian.Uint32(b[block0+4:])
			binary.LittleEndian.PutUint32(b[block0+4:], bl-3)
			return refixV2CRC(b)
		}, "block"},
		{"wrong block length (overrun)", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[block0+4:], 1<<30)
			return refixV2CRC(b)
		}, "block"},
		{"block edge count lies high", func(b []byte) []byte {
			cnt := binary.LittleEndian.Uint32(b[block0:])
			binary.LittleEndian.PutUint32(b[block0:], cnt+5)
			return refixV2CRC(b)
		}, "block"},
		{"block edge count lies low", func(b []byte) []byte {
			cnt := binary.LittleEndian.Uint32(b[block0:])
			binary.LittleEndian.PutUint32(b[block0:], cnt-5)
			return refixV2CRC(b)
		}, ""},
		{"block count lies high", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[hl:], 1<<20)
			return refixV2CRC(b)
		}, "block"},
		{"block count lies low", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[hl:], 1)
			return refixV2CRC(b)
		}, ""},
		{"vertex count lies low", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 3)
			return b // header is outside the CRC
		}, "vertex range"},
		{"vertex count lies high", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1<<30)
			return b
		}, "max edge id"},
		{"flags on a v2 file", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], csrFlagHasCSR)
			return b
		}, "version 2 carries no flags"},
	}

	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), data...))
			path := filepath.Join(dir, "corrupt.csrg")
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			loaders := map[string]func() error{
				"LoadCSR mmap": func() error { _, err := LoadCSR(path); return err },
				"LoadCSR portable": func() error {
					_, err := LoadCSRWith(path, CSRLoadOptions{DisableMmap: true})
					return err
				},
				"StreamCSR": func() error {
					_, _, err := StreamCSR("corrupt", bytes.NewReader(buf), 512, func(int64, []Edge) error { return nil })
					return err
				},
				"StreamCSRParallel": func() error {
					_, _, err := StreamCSRParallel("corrupt", bytes.NewReader(buf), 512, 4, func(int64, []Edge) error { return nil })
					return err
				},
			}
			for how, load := range loaders {
				err := load()
				if err == nil {
					t.Fatalf("%s accepted the corrupt file", how)
				}
				if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
					t.Errorf("%s: error %q does not mention %q", how, err, tc.wantErr)
				}
			}
		})
	}
}

// TestLoadCSRMmapMatchesPortable pins the zero-copy path against the
// copying decoder on both writer layouts (with and without adjacency
// sections) — and, where the platform supports mapping at all, that the
// aligned v1 layout actually engages it.
func TestLoadCSRMmapMatchesPortable(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()

	withCSR := filepath.Join(dir, "with-csr.csrg")
	if err := SaveCSR(g, withCSR); err != nil {
		t.Fatal(err)
	}
	streamed := filepath.Join(dir, "streamed.csrg")
	f, err := os.Create(streamed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewCSRWriter(f, g.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(g.Edges); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{withCSR, streamed} {
		mapped, err := LoadCSR(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		portable, err := LoadCSRWith(path, CSRLoadOptions{DisableMmap: true})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		assertSameGraph(t, portable, mapped)
		if portable.mmap != nil {
			t.Errorf("%s: portable load pinned a mapping", path)
		}
		if MmapSupported() && mapped.mmap == nil {
			t.Errorf("%s: mmap-capable platform did not engage the zero-copy path", path)
		}
	}
}

// TestLegacyUnpaddedHeaderStillLoads hand-writes a v1 file whose name is
// not NUL-padded — the layout every pre-padding writer produced — and
// checks it still decodes byte-identically (via the misalignment fallback
// on the mmap path).
func TestLegacyUnpaddedHeaderStillLoads(t *testing.T) {
	g := testGraph(t) // name "csr-test": 28+8 = 36, payload misaligned at %8 = 4
	var buf bytes.Buffer
	hdr := make([]byte, csrHeaderFixed+len(g.Name))
	copy(hdr[0:4], CSRMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], CSRVersion1)
	binary.LittleEndian.PutUint16(hdr[6:8], 0)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(g.Name)))
	copy(hdr[csrHeaderFixed:], g.Name)
	buf.Write(hdr)
	payload := make([]byte, 0, 8*len(g.Edges))
	for _, e := range g.Edges {
		payload = binary.LittleEndian.AppendUint32(payload, e.Src)
		payload = binary.LittleEndian.AppendUint32(payload, e.Dst)
	}
	buf.Write(payload)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc32.Checksum(payload, castagnoli))
	buf.Write(foot[:])

	path := filepath.Join(t.TempDir(), "legacy.csrg")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name {
		t.Errorf("name %q, want %q", got.Name, g.Name)
	}
	if !reflect.DeepEqual(got.Edges, g.Edges) {
		t.Error("legacy unpadded file decodes different edges")
	}
}

// TestUnknownVersionRejectedEverywhere covers the sniff bugfix: a binary
// file from a future format revision must be rejected by name through every
// entry point, not fed to the text parser or misparsed.
func TestUnknownVersionRejectedEverywhere(t *testing.T) {
	g := testGraph(t)
	data := writeCSRBytes(t, g)
	binary.LittleEndian.PutUint16(data[4:6], 7)
	path := filepath.Join(t.TempDir(), "future.csrg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := CSRFileVersion(path); err != nil || !ok || v != 7 {
		t.Fatalf("CSRFileVersion = (%d, %v, %v), want (7, true, nil)", v, ok, err)
	}
	for how, load := range map[string]func() error{
		"LoadFile":   func() error { _, err := LoadFile(path); return err },
		"LoadCSR":    func() error { _, err := LoadCSR(path); return err },
		"StreamFile": func() error { _, _, err := StreamFile(path, 0, func(int64, []Edge) error { return nil }); return err },
		"StreamCSR": func() error {
			_, _, err := StreamCSR(path, bytes.NewReader(data), 0, func(int64, []Edge) error { return nil })
			return err
		},
	} {
		err := load()
		if err == nil || !strings.Contains(err.Error(), "unsupported format version 7") {
			t.Errorf("%s: got %v, want unsupported-version error naming version 7", how, err)
		}
	}
}
