package gen

import (
	"testing"

	"graphpart/internal/graph"
)

func TestRoadNetShape(t *testing.T) {
	g := RoadNet("road", 60, 60, 1)
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty road network")
	}
	// Roads are bidirectional: both directions present for every street.
	fwd := map[graph.Edge]bool{}
	for _, e := range g.Edges {
		fwd[e] = true
	}
	for _, e := range g.Edges {
		if !fwd[graph.Edge{Src: e.Dst, Dst: e.Src}] {
			t.Fatalf("edge %v has no reverse", e)
		}
	}
	// Low degree: lattice + occasional diagonals keeps max degree small.
	if max := g.MaxDegree(); max > 16 {
		t.Errorf("MaxDegree = %d, want ≤ 16", max)
	}
	if c := graph.Classify(g); c.Class != graph.LowDegree {
		t.Errorf("road net classified %v, want low-degree", c.Class)
	}
}

func TestRoadNetDeterministic(t *testing.T) {
	a := RoadNet("a", 30, 30, 42)
	b := RoadNet("b", 30, 30, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestPrefAttachHeavyTailed(t *testing.T) {
	g := PrefAttach("pa", 8000, 8, 7)
	if g.NumVertices() != 8000 {
		t.Fatalf("NumVertices = %d, want 8000", g.NumVertices())
	}
	// Every non-seed vertex has out-degree m, so min total degree ≥ m:
	// the graph has the low-degree deficit of social networks.
	cls := graph.Classify(g)
	if cls.Class != graph.HeavyTailed {
		t.Errorf("classified %v (ratio=%.3f), want heavy-tailed", cls.Class, cls.Fit.LowDegreeRatio)
	}
	// Hubs exist.
	if cls.MaxDegree < 50 {
		t.Errorf("MaxDegree = %d, want hubs ≥ 50", cls.MaxDegree)
	}
}

func TestPrefAttachDeterministic(t *testing.T) {
	a := PrefAttach("a", 500, 4, 9)
	b := PrefAttach("b", 500, 4, 9)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestPowerLawFullTail(t *testing.T) {
	g := PowerLaw("pl", PowerLawConfig{N: 20000, Alpha: 1.9, MinD: 1, MaxD: 2000, Seed: 3})
	cls := graph.Classify(g)
	if cls.Class != graph.PowerLaw {
		t.Errorf("classified %v (ratio=%.3f, maxdeg=%d), want power-law",
			cls.Class, cls.Fit.LowDegreeRatio, cls.MaxDegree)
	}
	// Most vertices are low-degree.
	h := g.DegreeHistogram()
	low := h[1] + h[2] + h[3]
	if low < g.NumVertices()/3 {
		t.Errorf("low-degree vertices = %d of %d, want ≥ 1/3", low, g.NumVertices())
	}
}

func TestPowerLawNoSelfLoops(t *testing.T) {
	g := PowerLaw("pl", PowerLawConfig{N: 2000, Alpha: 2.0, MinD: 1, MaxD: 100, Seed: 5})
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatalf("self loop %v", e)
		}
	}
}

func TestZipfDegreesRespectBounds(t *testing.T) {
	g := PowerLaw("pl", PowerLawConfig{N: 1000, Alpha: 2.0, MinD: 2, MaxD: 50, Seed: 11})
	// Out-degrees are drawn in [2,50] before stub pairing truncation; at
	// least the max can't exceed the cap by much (pairing only removes).
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > 50 {
			t.Fatalf("out-degree %d exceeds MaxD", d)
		}
	}
}
