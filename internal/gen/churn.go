package gen

import (
	"fmt"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// ChurnConfig shapes a deterministic timestamped add/delete trace over an
// edge list.
type ChurnConfig struct {
	// Windows is the number of ingestion windows the edge list is split
	// into (≥1). Window w adds the contiguous slice [m·w/W, m·(w+1)/W) of
	// the edge list, preserving stream order — an add-only trace replays
	// the original stream exactly.
	Windows int
	// DelFrac is the deletion rate: each window deletes
	// ⌊DelFrac · windowAdds⌋ edges sampled uniformly from the edges live at
	// the window's start. 0 means add-only.
	DelFrac float64
	// Seed drives the deletion sampling.
	Seed uint64
}

// TimedEdge is one trace event: a monotone timestamp plus the edge it adds
// or deletes.
type TimedEdge struct {
	Time int64
	Edge graph.Edge
}

// ChurnWindow is one ingestion window of a churn trace: the deletions
// applied at its start, then the additions. Timestamps are strictly
// monotone across the whole trace.
type ChurnWindow struct {
	Index int
	Dels  []TimedEdge
	Adds  []TimedEdge
}

// ChurnTrace splits an edge list into a deterministic timestamped
// add/delete trace and feeds each window to fn in order. Deletions are
// sampled only from edges still live, so the trace is always applicable;
// the returned slice is the surviving edge set in original stream order —
// what a one-shot partitioning of the post-churn graph should consume.
func ChurnTrace(edges []graph.Edge, cfg ChurnConfig, fn func(w ChurnWindow) error) ([]graph.Edge, error) {
	if cfg.Windows < 1 {
		return nil, fmt.Errorf("gen: churn needs ≥1 window, got %d", cfg.Windows)
	}
	if cfg.DelFrac < 0 || cfg.DelFrac >= 1 {
		return nil, fmt.Errorf("gen: churn DelFrac must be in [0,1), got %g", cfg.DelFrac)
	}
	rng := hashing.NewRNG(cfg.Seed)
	m := len(edges)
	// live tracks the indices (into edges) of currently live edges; alive
	// marks survivors so the final set keeps original stream order.
	live := make([]int, 0, m)
	alive := make([]bool, m)
	var now int64
	for w := 0; w < cfg.Windows; w++ {
		lo, hi := m*w/cfg.Windows, m*(w+1)/cfg.Windows
		cw := ChurnWindow{Index: w}
		nDel := int(cfg.DelFrac * float64(hi-lo))
		if nDel > len(live) {
			nDel = len(live)
		}
		for d := 0; d < nDel; d++ {
			pick := rng.Intn(len(live))
			idx := live[pick]
			live[pick] = live[len(live)-1]
			live = live[:len(live)-1]
			alive[idx] = false
			now++
			cw.Dels = append(cw.Dels, TimedEdge{Time: now, Edge: edges[idx]})
		}
		for i := lo; i < hi; i++ {
			live = append(live, i)
			alive[i] = true
			now++
			cw.Adds = append(cw.Adds, TimedEdge{Time: now, Edge: edges[i]})
		}
		if err := fn(cw); err != nil {
			return nil, err
		}
	}
	survivors := make([]graph.Edge, 0, len(live))
	for i, e := range edges {
		if alive[i] {
			survivors = append(survivors, e)
		}
	}
	return survivors, nil
}

// Edges strips the timestamps off a trace slice.
func Edges(te []TimedEdge) []graph.Edge {
	out := make([]graph.Edge, len(te))
	for i, t := range te {
		out[i] = t.Edge
	}
	return out
}
