// Package gen produces the deterministic synthetic graphs that stand in for
// the paper's datasets (Table 4.2).
//
// The paper's analysis depends only on the degree-distribution class of each
// input (§5.4.2, Fig 5.8): road networks are low-degree and high-diameter;
// LiveJournal/enwiki/Twitter are heavy-tailed with a deficit of low-degree
// vertices; UK-web is power-law with a full low-degree tail. Each generator
// here is parameterized to land squarely in one of those classes, which the
// tests verify with the same log-log regression the paper plots.
package gen

import (
	"math"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// StreamRoadNet emits the road network RoadNet builds — a w×h 2-D lattice
// with both directions of every road present, a fraction of streets
// removed, and a sprinkle of diagonal "shortcut" roads — in batches of
// ~batchSize edges (at most batchSize+1, since roads are emitted as
// bidirectional pairs; ≤0 means 64Ki), without ever materializing the edge
// list. The batch slice is reused between calls; fn must copy anything it
// retains. Identical seed ⇒ identical edges to RoadNet, in the same order.
func StreamRoadNet(w, h int, seed uint64, batchSize int, fn func(edges []graph.Edge) error) error {
	if batchSize <= 0 {
		batchSize = 1 << 16
	}
	rng := hashing.NewRNG(seed)
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*w + x) }
	batch := make([]graph.Edge, 0, batchSize+1)
	var ferr error
	addRoad := func(a, b graph.VertexID) {
		if ferr != nil {
			// A flush already failed; a later flush must not overwrite
			// (and potentially clear) the error.
			return
		}
		batch = append(batch, graph.Edge{Src: a, Dst: b}, graph.Edge{Src: b, Dst: a})
		if len(batch) >= batchSize {
			ferr = fn(batch)
			batch = batch[:0]
		}
	}
	for y := 0; y < h && ferr == nil; y++ {
		for x := 0; x < w && ferr == nil; x++ {
			// Drop ~12% of grid streets to create irregularity, but keep the
			// lattice largely intact so diameter stays Θ(w+h).
			if x+1 < w && rng.Float64() >= 0.12 {
				addRoad(id(x, y), id(x+1, y))
			}
			if y+1 < h && rng.Float64() >= 0.12 {
				addRoad(id(x, y), id(x, y+1))
			}
			// Occasional diagonal shortcut (on/off-ramps).
			if x+1 < w && y+1 < h && rng.Float64() < 0.03 {
				addRoad(id(x, y), id(x+1, y+1))
			}
		}
	}
	if ferr != nil {
		return ferr
	}
	if len(batch) > 0 {
		return fn(batch)
	}
	return nil
}

// RoadNet generates a road-network-like graph: StreamRoadNet with the
// batches collected. The result is connected-ish, low-degree (max total
// degree ≤ ~16), and high-diameter — the road-net-CA / road-net-USA regime.
func RoadNet(name string, w, h int, seed uint64) *graph.Graph {
	var edges []graph.Edge
	// The collector callback never fails, so StreamRoadNet cannot either.
	_ = StreamRoadNet(w, h, seed, 0, func(batch []graph.Edge) error {
		edges = append(edges, batch...)
		return nil
	})
	return graph.FromEdges(name, edges)
}

// PrefAttach generates a heavy-tailed graph by preferential attachment
// (Barabási–Albert): vertex v (for v ≥ m) adds m out-edges whose targets are
// sampled proportionally to current total degree. Every vertex has total
// degree ≥ m, so the graph has the low-degree deficit that characterizes
// the paper's social-network datasets (LiveJournal, enwiki, Twitter in
// Fig 5.8a/b).
func PrefAttach(name string, n, m int, seed uint64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := hashing.NewRNG(seed)
	edges := make([]graph.Edge, 0, n*m)
	// endpoints lists every edge endpoint seen so far; sampling uniformly
	// from it is sampling proportional to degree.
	endpoints := make([]graph.VertexID, 0, 2*n*m)
	// Seed clique over the first m+1 vertices.
	for v := 1; v <= m && v < n; v++ {
		for u := 0; u < v; u++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(u)})
			endpoints = append(endpoints, graph.VertexID(v), graph.VertexID(u))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[graph.VertexID]bool, m)
		for len(chosen) < m {
			var t graph.VertexID
			if rng.Float64() < 0.05 || len(endpoints) == 0 {
				// Small uniform component keeps the tail from collapsing
				// onto a handful of hubs.
				t = graph.VertexID(rng.Intn(v))
			} else {
				t = endpoints[rng.Intn(len(endpoints))]
			}
			if t == graph.VertexID(v) || chosen[t] {
				continue
			}
			chosen[t] = true
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: t})
			endpoints = append(endpoints, graph.VertexID(v), t)
		}
	}
	shuffleEdges(edges, rng)
	return graph.FromEdges(name, edges)
}

// PowerLawConfig configures PowerLaw.
type PowerLawConfig struct {
	N     int     // number of vertices
	Alpha float64 // power-law exponent of the degree sequence (e.g. 1.9–2.2)
	MaxD  int     // cap on a single vertex's generated degree
	MinD  int     // floor on degree (use 1 to keep the full low-degree tail)
	Seed  uint64
}

// PowerLaw generates a power-law graph with a *full* low-degree tail (most
// vertices have degree 1–2), standing in for UK-web (Fig 5.8c). It draws a
// Zipf out-degree sequence and pairs edge stubs configuration-model style;
// in-degrees are assigned by an independent Zipf sequence so both
// distributions are skewed, as in web graphs.
func PowerLaw(name string, cfg PowerLawConfig) *graph.Graph {
	if cfg.MinD < 1 {
		cfg.MinD = 1
	}
	if cfg.MaxD < cfg.MinD {
		cfg.MaxD = cfg.MinD
	}
	rng := hashing.NewRNG(cfg.Seed)
	outDeg := zipfDegrees(cfg.N, cfg.Alpha, cfg.MinD, cfg.MaxD, rng)
	inDeg := zipfDegrees(cfg.N, cfg.Alpha, cfg.MinD, cfg.MaxD, rng)

	// Build stub lists. Vertex order is permuted independently for the two
	// sides so hubs on the out side are not the same vertices as hubs on
	// the in side (web pages with many links are rarely the most linked-to).
	srcStubs := stubs(outDeg, rng)
	dstStubs := stubs(inDeg, rng)
	m := len(srcStubs)
	if len(dstStubs) < m {
		m = len(dstStubs)
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		s, d := srcStubs[i], dstStubs[i]
		if s == d {
			continue // drop self-loops
		}
		edges = append(edges, graph.Edge{Src: s, Dst: d})
	}
	return graph.FromEdges(name, edges)
}

// zipfDegrees draws n degrees from a truncated Zipf distribution with
// exponent alpha via inverse-CDF sampling over [minD, maxD].
func zipfDegrees(n int, alpha float64, minD, maxD int, rng *hashing.RNG) []int {
	// Precompute the CDF of P(d) ∝ d^-alpha over the support.
	support := maxD - minD + 1
	cdf := make([]float64, support)
	total := 0.0
	for i := 0; i < support; i++ {
		d := float64(minD + i)
		total += math.Pow(d, -alpha)
		cdf[i] = total
	}
	degs := make([]int, n)
	for i := range degs {
		u := rng.Float64() * total
		lo, hi := 0, support-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		degs[i] = minD + lo
	}
	return degs
}

// stubs expands a degree sequence into a shuffled list of vertex stubs.
func stubs(deg []int, rng *hashing.RNG) []graph.VertexID {
	total := 0
	for _, d := range deg {
		total += d
	}
	out := make([]graph.VertexID, 0, total)
	for v, d := range deg {
		for i := 0; i < d; i++ {
			out = append(out, graph.VertexID(v))
		}
	}
	shuffleVertices(out, rng)
	return out
}

func shuffleEdges(edges []graph.Edge, rng *hashing.RNG) {
	for i := len(edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
}

func shuffleVertices(vs []graph.VertexID, rng *hashing.RNG) {
	for i := len(vs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		vs[i], vs[j] = vs[j], vs[i]
	}
}
