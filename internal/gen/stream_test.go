package gen

import (
	"errors"
	"testing"

	"graphpart/internal/graph"
)

// TestStreamRoadNetMatchesRoadNet asserts the streaming generator emits
// exactly the edges RoadNet materializes, in order, for any batch size.
func TestStreamRoadNetMatchesRoadNet(t *testing.T) {
	want := RoadNet("road", 17, 13, 0x42)
	for _, batchSize := range []int{1, 7, 1 << 16} {
		var got []graph.Edge
		err := StreamRoadNet(17, 13, 0x42, batchSize, func(batch []graph.Edge) error {
			got = append(got, batch...)
			return nil
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batchSize, err)
		}
		if len(got) != want.NumEdges() {
			t.Fatalf("batch=%d: %d edges, want %d", batchSize, len(got), want.NumEdges())
		}
		for i := range got {
			if got[i] != want.Edges[i] {
				t.Fatalf("batch=%d: edge %d = %v, want %v", batchSize, i, got[i], want.Edges[i])
			}
		}
	}
}

// TestStreamRoadNetAbortsOnError asserts generation stops at the first
// callback failure instead of grinding through the rest of the lattice.
func TestStreamRoadNetAbortsOnError(t *testing.T) {
	sentinel := errors.New("stop")
	calls := 0
	err := StreamRoadNet(100, 100, 1, 16, func([]graph.Edge) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after failing, want 1", calls)
	}
}
