package gen

import (
	"math"

	"graphpart/internal/graph"
	"graphpart/internal/hashing"
)

// WebGraphConfig configures WebGraph.
type WebGraphConfig struct {
	N int // number of pages
	// Alpha is the Zipf exponent of the out-degree sequence.
	Alpha float64
	// MaxOutD caps a single page's out-degree.
	MaxOutD int
	// Locality is the fraction of links that stay within a page's
	// neighborhood of ids (same host). Web crawls assign consecutive ids
	// within a host, so real edge lists are strongly local; ~0.8 matches
	// the regime the LAW datasets exhibit.
	Locality float64
	// Window is the id radius of "the same host".
	Window int
	Seed   uint64
}

// WebGraph generates a UK-web-like graph: Zipf out-degrees with a full
// low-degree tail, hub pages with enormous in-degree, and — crucially for
// partitioning — the *edge-list structure* of a real crawl: edges sorted by
// source and mostly host-local. The paper's greedy strategies (HDRF,
// Oblivious) owe their uk-web advantage (§5.4.2) to exactly this locality,
// which hash-based strategies cannot exploit.
func WebGraph(name string, cfg WebGraphConfig) *graph.Graph {
	if cfg.Alpha == 0 {
		cfg.Alpha = 2.0
	}
	if cfg.MaxOutD <= 0 {
		cfg.MaxOutD = cfg.N / 10
	}
	if cfg.Locality == 0 {
		cfg.Locality = 0.8
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	rng := hashing.NewRNG(cfg.Seed)
	outDeg := zipfDegrees(cfg.N, cfg.Alpha, 1, cfg.MaxOutD, rng)

	// Global targets follow a Zipf popularity: page ids are hashed into a
	// popularity rank so hubs are spread over the id space (as crawl order
	// spreads popular hosts).
	popExp := 1.0 / (cfg.Alpha - 1)
	if cfg.Alpha <= 1.1 {
		popExp = 10
	}
	pickGlobal := func() graph.VertexID {
		// Inverse-CDF sample of rank r ∝ r^-popZipf over [1, N], then map
		// rank to a pseudo-random page.
		u := rng.Float64()
		r := math.Pow(u, popExp) * float64(cfg.N-1)
		rank := int(r)
		if rank >= cfg.N {
			rank = cfg.N - 1
		}
		return graph.VertexID(hashing.Mix64(uint64(rank)+cfg.Seed) % uint64(cfg.N))
	}

	// Pages come in "hosts" of Window consecutive ids. Local links target
	// pages within the host with Zipf-skewed popularity (index pages
	// collect most links), preserving the full low-degree tail: a typical
	// leaf page keeps total degree 1–2.
	hostCDF := make([]float64, cfg.Window)
	total := 0.0
	for i := 0; i < cfg.Window; i++ {
		total += math.Pow(float64(i+1), -1.6)
		hostCDF[i] = total
	}
	pickLocal := func(v int) graph.VertexID {
		base := v - v%cfg.Window
		u := rng.Float64() * total
		lo, hi := 0, cfg.Window-1
		for lo < hi {
			mid := (lo + hi) / 2
			if hostCDF[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		d := base + lo
		if d >= cfg.N {
			d = cfg.N - 1
		}
		return graph.VertexID(d)
	}

	var edges []graph.Edge
	for v := 0; v < cfg.N; v++ {
		for k := 0; k < outDeg[v]; k++ {
			var dst graph.VertexID
			if rng.Float64() < cfg.Locality {
				dst = pickLocal(v)
			} else {
				dst = pickGlobal()
			}
			if int(dst) == v {
				continue
			}
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: dst})
		}
	}
	return graph.FromEdges(name, edges)
}
