package gen

import (
	"testing"

	"graphpart/internal/graph"
)

func traceWindows(t *testing.T, edges []graph.Edge, cfg ChurnConfig) ([]ChurnWindow, []graph.Edge) {
	t.Helper()
	var ws []ChurnWindow
	survivors, err := ChurnTrace(edges, cfg, func(w ChurnWindow) error {
		// Events are shared buffers only within the callback; copy.
		cw := ChurnWindow{Index: w.Index}
		cw.Dels = append(cw.Dels, w.Dels...)
		cw.Adds = append(cw.Adds, w.Adds...)
		ws = append(ws, cw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ws, survivors
}

func TestChurnTraceAddOnlyReplaysStream(t *testing.T) {
	g := RoadNet("road", 12, 12, 1)
	ws, survivors := traceWindows(t, g.Edges, ChurnConfig{Windows: 5, Seed: 9})
	var replay []graph.Edge
	for _, w := range ws {
		if len(w.Dels) != 0 {
			t.Fatalf("window %d has %d deletions in an add-only trace", w.Index, len(w.Dels))
		}
		replay = append(replay, Edges(w.Adds)...)
	}
	if len(replay) != len(g.Edges) || len(survivors) != len(g.Edges) {
		t.Fatalf("add-only trace replayed %d edges, %d survive, want %d", len(replay), len(survivors), len(g.Edges))
	}
	for i := range replay {
		if replay[i] != g.Edges[i] || survivors[i] != g.Edges[i] {
			t.Fatalf("edge %d out of stream order", i)
		}
	}
}

func TestChurnTraceTimestampsMonotone(t *testing.T) {
	g := PrefAttach("pa", 500, 3, 2)
	ws, survivors := traceWindows(t, g.Edges, ChurnConfig{Windows: 4, DelFrac: 0.25, Seed: 3})
	last := int64(0)
	total := 0
	live := 0
	for _, w := range ws {
		for _, ev := range w.Dels {
			if ev.Time <= last {
				t.Fatalf("timestamp %d not monotone (prev %d)", ev.Time, last)
			}
			last = ev.Time
			live--
		}
		for _, ev := range w.Adds {
			if ev.Time <= last {
				t.Fatalf("timestamp %d not monotone (prev %d)", ev.Time, last)
			}
			last = ev.Time
			live++
			total++
		}
	}
	if total != len(g.Edges) {
		t.Fatalf("trace added %d edges, want %d", total, len(g.Edges))
	}
	if live != len(survivors) {
		t.Fatalf("net live count %d, survivors %d", live, len(survivors))
	}
	if live >= total {
		t.Fatalf("DelFrac 0.25 deleted nothing (%d live of %d)", live, total)
	}
}

func TestChurnTraceDeterministic(t *testing.T) {
	g := PrefAttach("pa", 300, 3, 7)
	ws1, s1 := traceWindows(t, g.Edges, ChurnConfig{Windows: 3, DelFrac: 0.2, Seed: 5})
	ws2, s2 := traceWindows(t, g.Edges, ChurnConfig{Windows: 3, DelFrac: 0.2, Seed: 5})
	if len(s1) != len(s2) {
		t.Fatalf("survivor counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("survivor %d differs", i)
		}
	}
	for i := range ws1 {
		if len(ws1[i].Dels) != len(ws2[i].Dels) || len(ws1[i].Adds) != len(ws2[i].Adds) {
			t.Fatalf("window %d shape differs between runs", i)
		}
		for j := range ws1[i].Dels {
			if ws1[i].Dels[j] != ws2[i].Dels[j] {
				t.Fatalf("window %d delete %d differs", i, j)
			}
		}
	}
}

func TestChurnTraceValidation(t *testing.T) {
	g := RoadNet("road", 4, 4, 1)
	if _, err := ChurnTrace(g.Edges, ChurnConfig{Windows: 0}, func(ChurnWindow) error { return nil }); err == nil {
		t.Fatal("0 windows accepted")
	}
	if _, err := ChurnTrace(g.Edges, ChurnConfig{Windows: 2, DelFrac: 1}, func(ChurnWindow) error { return nil }); err == nil {
		t.Fatal("DelFrac 1 accepted")
	}
}
