package plot

import (
	"strings"
	"testing"
)

func TestScatterRender(t *testing.T) {
	s := &Scatter{
		Title:  "net vs RF",
		XLabel: "replication factor",
		YLabel: "GB",
		Points: []Point{
			{X: 2, Y: 1, Label: "Grid"},
			{X: 5, Y: 3, Label: "Random"},
		},
		Trend: &[2]float64{0.6, 0},
	}
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"net vs RF", "replication factor", "Grid", "Random", "*", "o", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter output missing %q", want)
		}
	}
}

func TestScatterDegenerate(t *testing.T) {
	var sb strings.Builder
	if err := (&Scatter{Title: "empty"}).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty scatter should say 'no data'")
	}
	// Single point and identical coordinates must not divide by zero.
	sb.Reset()
	s := &Scatter{Title: "one", Points: []Point{{X: 3, Y: 3, Label: "a"}, {X: 3, Y: 3, Label: "b"}}}
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Error("degenerate ranges produced NaN")
	}
}

func TestLinesRender(t *testing.T) {
	l := &Lines{
		Title:  "cumulative time",
		XLabel: "iterations",
		YLabel: "s",
		X:      []float64{1, 5, 10, 25},
		Series: []Series{
			{Name: "CR", Y: []float64{1, 2, 3, 6}},
			{Name: "HDRF", Y: []float64{2, 2.5, 3, 4}},
		},
	}
	var sb strings.Builder
	if err := l.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cumulative time", "iterations", "*=CR", "o=HDRF"} {
		if !strings.Contains(out, want) {
			t.Errorf("lines output missing %q", want)
		}
	}
}

func TestLinesDegenerate(t *testing.T) {
	var sb strings.Builder
	if err := (&Lines{Title: "empty"}).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty lines should say 'no data'")
	}
	sb.Reset()
	flat := &Lines{Title: "flat", X: []float64{1, 2}, Series: []Series{{Name: "s", Y: []float64{5, 5}}}}
	if err := flat.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Error("flat series produced NaN")
	}
}
