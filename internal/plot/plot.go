// Package plot renders simple ASCII scatter plots and line series so the
// benchmark runner can draw the paper's figures — not just their numbers —
// in a terminal. It supports the two shapes the paper uses: labeled scatter
// plots with an optional trend line (Figs 5.3–5.5, 6.1–6.2, 8.3) and
// multi-series cumulative curves (Figs 9.1–9.2).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one labeled sample of a scatter plot.
type Point struct {
	X, Y  float64
	Label string
}

// Scatter describes a scatter plot.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Points []Point
	// Trend, if non-nil, draws the line y = Trend[0]·x + Trend[1].
	Trend *[2]float64
	// Width and Height of the plot area in characters (defaults 64×20).
	Width, Height int
}

// Render writes the plot.
func (s *Scatter) Render(w io.Writer) error {
	width, height := s.Width, s.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 18
	}
	if len(s.Points) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", s.Title)
		return err
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	// Pad the ranges so points do not sit on the border.
	padX := (maxX - minX) * 0.08
	padY := (maxY - minY) * 0.12
	if padX == 0 {
		padX = math.Abs(maxX)*0.1 + 1e-12
	}
	if padY == 0 {
		padY = math.Abs(maxY)*0.1 + 1e-12
	}
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int { return int((x - minX) / (maxX - minX) * float64(width-1)) }
	row := func(y float64) int { return height - 1 - int((y-minY)/(maxY-minY)*float64(height-1)) }

	if s.Trend != nil {
		for c := 0; c < width; c++ {
			x := minX + (maxX-minX)*float64(c)/float64(width-1)
			y := s.Trend[0]*x + s.Trend[1]
			r := row(y)
			if r >= 0 && r < height {
				grid[r][c] = '.'
			}
		}
	}
	marks := []byte("*o+x#@%&$^!~")
	legend := make([]string, 0, len(s.Points))
	for i, p := range s.Points {
		m := marks[i%len(marks)]
		r, c := row(p.Y), col(p.X)
		if r >= 0 && r < height && c >= 0 && c < width {
			grid[r][c] = m
		}
		legend = append(legend, fmt.Sprintf("%c=%s(%.3g,%.4g)", m, p.Label, p.X, p.Y))
	}

	if _, err := fmt.Fprintf(w, "%s\n", s.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", s.YLabel)
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "         +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "          %-*.3g%*.3g  (%s)\n", width/2, minX, width/2, maxX, s.XLabel)
	for i := 0; i < len(legend); i += 3 {
		end := i + 3
		if end > len(legend) {
			end = len(legend)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(legend[i:end], "  "))
	}
	return nil
}

// Series is one named curve of a line chart.
type Series struct {
	Name string
	Y    []float64 // sampled at X[i] of the chart
}

// Lines describes a multi-series line chart with shared x samples.
type Lines struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Width  int
	Height int
}

// Render writes the chart.
func (l *Lines) Render(w io.Writer) error {
	width, height := l.Width, l.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 18
	}
	if len(l.X) == 0 || len(l.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", l.Title)
		return err
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range l.Series {
		for _, y := range s.Y {
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minY == maxY {
		maxY = minY + 1
	}
	minX, maxX := l.X[0], l.X[len(l.X)-1]
	if minX == maxX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte("*o+x#@%&$^!~")
	for si, s := range l.Series {
		m := marks[si%len(marks)]
		for i := 1; i < len(s.Y) && i < len(l.X); i++ {
			// Interpolate between consecutive samples.
			steps := width / len(l.X) * 2
			if steps < 2 {
				steps = 2
			}
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				x := l.X[i-1] + (l.X[i]-l.X[i-1])*f
				y := s.Y[i-1] + (s.Y[i]-s.Y[i-1])*f
				c := int((x - minX) / (maxX - minX) * float64(width-1))
				r := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
				if r >= 0 && r < height && c >= 0 && c < width {
					grid[r][c] = m
				}
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n%s\n", l.Title, l.YLabel); err != nil {
		return err
	}
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "         +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "          %-*.3g%*.3g  (%s)\n", width/2, minX, width/2, maxX, l.XLabel)
	var leg []string
	for si, s := range l.Series {
		leg = append(leg, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(leg, "  "))
	return nil
}
