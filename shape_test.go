// Shape assertions: every experiment must run, render, and reproduce the
// paper's qualitative claims (its structured Checks must pass). The single
// documented exception is fig8.4's K-core utilization-correlation branch
// (see EXPERIMENTS.md).
package main

import (
	"strings"
	"testing"

	"graphpart/internal/bench"
)

// allowedMisses maps experiment id → substrings of failed checks' observed
// evidence that are allowed to fail (documented deviations).
var allowedMisses = map[string][]string{
	"fig8.4": {"K-Core: utilization-vs-compute"},
}

// slowExperiments are the table reproductions that dominate the suite's
// wall-clock (multi-second engine simulations). They are gated behind the
// full run so that `go test -short` keeps the other ~24 experiments and
// finishes in well under 20s.
var slowExperiments = map[string]bool{
	"fig5.3":     true, // strategy×app engine sweep (shared by 5.3–5.5)
	"fig5.4":     true, // same sweep, compute-time axis
	"fig5.5":     true, // same sweep, peak-memory axis
	"fig8.4":     true, // utilization box plots over every app
	"fig5.9":     true, // compute/ingress break-even sweep
	"tab5.1":     true, // Grid-vs-HDRF across every cluster shape
	"adv.regret": true, // uk-web engine sweeps feeding the advisor fit
	"dyn.drift":  true, // 9 churn traces over uk-web plus one-shot baselines
}

func TestAllExperimentsReproducePaperShapes(t *testing.T) {
	cfg := bench.DefaultConfig()
	exps := bench.All()
	if len(exps) < 23 {
		t.Fatalf("only %d experiments registered; the paper has 23 reproduced artifacts", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && slowExperiments[e.ID] {
				t.Skipf("%s takes multiple seconds; run without -short", e.ID)
			}
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Cells) == 0 {
				t.Fatalf("%s: no typed cells emitted", e.ID)
			}
			table := res.Table()
			if len(table.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			var sb strings.Builder
			if err := table.Render(&sb); err != nil {
				t.Fatalf("%s: render: %v", e.ID, err)
			}
			if !strings.Contains(sb.String(), e.ID) {
				t.Errorf("%s: rendered output missing experiment id", e.ID)
			}
			for _, c := range res.Checks {
				if c.Pass {
					continue
				}
				allowed := false
				for _, pat := range allowedMisses[e.ID] {
					if strings.Contains(c.Observed, pat) || strings.Contains(c.Claim, pat) {
						allowed = true
					}
				}
				if !allowed {
					t.Errorf("%s: shape missed: %s", e.ID, c.Observed)
				}
			}
		})
	}
}

func TestExperimentRegistryLookup(t *testing.T) {
	if _, ok := bench.Get("fig5.3"); !ok {
		t.Fatal("fig5.3 not registered")
	}
	if _, ok := bench.Get("fig99.9"); ok {
		t.Fatal("bogus id found")
	}
	seen := map[string]bool{}
	for _, e := range bench.All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" {
			t.Errorf("%s: missing title or paper summary", e.ID)
		}
	}
}
